//===- tests/detectors_test.cpp - FastTrack, Eraser, CP, windowing ------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cp/CpEngine.h"
#include "detect/DetectorRunner.h"
#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "lockset/EraserDetector.h"
#include "mcm/WindowedPredictor.h"
#include "trace/TraceBuilder.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

// ---- FastTrack --------------------------------------------------------------

class FastTrackTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastTrackTest, AgreesWithHbOnRacyVariables) {
  // FastTrack's guarantee: it reports a race on variable x iff the full
  // vector-clock analysis does (it may report fewer distinct pairs).
  RandomTraceParams Params;
  Params.Seed = GetParam();
  Params.NumThreads = 2 + GetParam() % 4;
  Params.OpsPerThread = 40;
  Params.WithForkJoin = GetParam() % 3 == 0;
  Trace T = randomTrace(Params);
  RaceReport Hb = testutil::run<HbDetector>(T);
  RaceReport Ft = testutil::run<FastTrackDetector>(T);
  EXPECT_EQ(testutil::racyVars(Hb, T), testutil::racyVars(Ft, T));
  // Every FastTrack pair is an HB pair.
  for (const RaceInstance &I : Ft.instances())
    EXPECT_TRUE(Hb.hasPair(I.pair())) << I.str(T);
}

INSTANTIATE_TEST_SUITE_P(Random, FastTrackTest,
                         ::testing::Range<uint64_t>(1, 25));

TEST(FastTrackTest, PaperFigureVerdictsMatchHb) {
  for (const PaperTrace &P : allPaperTraces()) {
    RaceReport Ft = testutil::run<FastTrackDetector>(P.T);
    EXPECT_EQ(Ft.numDistinctPairs() > 0, P.HbRace) << P.Name;
  }
}

TEST(FastTrackTest, ReadSharingPromotesToVectorClock) {
  // Concurrent reads force the read history into vector mode; a later
  // unordered write must race with *both* reads.
  TraceBuilder B;
  B.write("t0", "x", "w0");
  B.acquire("t0", "l").release("t0", "l");
  B.acquire("t1", "l").release("t1", "l");
  B.acquire("t2", "l").release("t2", "l");
  B.read("t1", "x", "r1");
  B.read("t2", "x", "r2");
  B.write("t3", "x", "w3");
  Trace T = testutil::takeValid(B);
  FastTrackDetector D(T);
  RaceReport R = runDetector(D, T).Report;
  EXPECT_GE(D.numReadVectorPromotions(), 1u);
  // Events: w0=0, three lock pairs=1..6, r1=7, r2=8, w3=9.
  EXPECT_TRUE(R.hasPair(RacePair(T.event(7).Loc, T.event(9).Loc)));
  EXPECT_TRUE(R.hasPair(RacePair(T.event(8).Loc, T.event(9).Loc)));
}

TEST(FastTrackTest, SameEpochShortcutsDoNotMissRaces) {
  TraceBuilder B;
  B.read("t1", "x", "r1a");
  B.read("t1", "x", "r1b"); // Same epoch: shortcut path.
  B.write("t2", "x", "w2");
  RaceReport R = testutil::run<FastTrackDetector>(testutil::takeValid(B));
  EXPECT_GE(R.numDistinctPairs(), 1u);
}

// ---- Eraser -----------------------------------------------------------------

TEST(EraserTest, CatchesUnprotectedSharing) {
  TraceBuilder B;
  B.write("t1", "x", "a");
  B.write("t2", "x", "b");
  RaceReport R = testutil::run<EraserDetector>(testutil::takeValid(B));
  EXPECT_EQ(R.numDistinctPairs(), 1u);
}

TEST(EraserTest, ConsistentLockingIsQuiet) {
  TraceBuilder B;
  for (const char *T : {"t1", "t2", "t1"}) {
    B.acquire(T, "l").read(T, "x").write(T, "x").release(T, "l");
  }
  RaceReport R = testutil::run<EraserDetector>(testutil::takeValid(B));
  EXPECT_EQ(R.numDistinctPairs(), 0u);
}

TEST(EraserTest, ReadSharedDataDoesNotWarn) {
  // Write during initialization (exclusive), then read-only sharing.
  TraceBuilder B;
  B.write("t1", "x", "init");
  B.read("t2", "x", "r2");
  B.read("t3", "x", "r3");
  RaceReport R = testutil::run<EraserDetector>(testutil::takeValid(B));
  EXPECT_EQ(R.numDistinctPairs(), 0u);
}

TEST(EraserTest, MissesHbOrderedRacesThatLacksLocks) {
  // Fork/join ordering without locks: no race exists, but Eraser has no
  // notion of HB and warns anyway — the unsoundness §1 describes.
  TraceBuilder B;
  B.write("t1", "x", "parent");
  B.fork("t1", "t2");
  B.write("t2", "x", "child");
  RaceReport R = testutil::run<EraserDetector>(testutil::takeValid(B));
  EXPECT_EQ(R.numDistinctPairs(), 1u) << "expected the classic false alarm";
}

// ---- CP engine ----------------------------------------------------------------

TEST(CpEngineTest, MatchesPaperVerdictsOnFigures) {
  for (const PaperTrace &P : allPaperTraces()) {
    CpResult R = runCpFull(P.T);
    EXPECT_EQ(R.Report.numDistinctPairs() > 0, P.CpRace) << P.Name;
  }
}

TEST(CpEngineTest, WindowedCpMissesCrossWindowRaces) {
  // Build fig1b-style races separated by padding so they never share a
  // 10-event window.
  TraceBuilder B;
  B.write("t1", "y", "first");
  for (int I = 0; I < 30; ++I)
    B.acrl("t1", "pad");
  B.read("t2", "y", "second");
  Trace T = testutil::takeValid(B);
  CpResult Full = runCpFull(T);
  EXPECT_EQ(Full.Report.numDistinctPairs(), 1u);
  CpResult Windowed = runCpWindowed(T, 10);
  EXPECT_EQ(Windowed.Report.numDistinctPairs(), 0u);
  EXPECT_GT(Windowed.NumWindows, 1u);
}

TEST(CpEngineTest, WindowedClosureWorksForAnyOrder) {
  Trace T = paperFig2b().T;
  CpResult R = runClosureWindowed(T, T.size(), OrderKind::WCP);
  EXPECT_EQ(R.Report.numDistinctPairs() > 0, true);
}

// ---- Windowed runs of streaming detectors ------------------------------------

TEST(WindowedDetectorTest, WindowingLosesFarRaces) {
  // The central §4.3 claim, on the bufwriter model: its far race spans
  // most of the trace, so windowed HB/WCP misses it while the unwindowed
  // run reports it.
  WorkloadSpec Spec = workloadSpec("bufwriter");
  Trace T = makeWorkload(Spec, 0.02);
  RaceReport Full = testutil::run<WcpDetector>(T);
  ASSERT_EQ(Full.numDistinctPairs(), Spec.expectedWcpPairs());

  DetectorFactory Make = [](const Trace &Fragment) {
    return std::make_unique<WcpDetector>(Fragment);
  };
  RunResult Windowed = runDetectorWindowed(Make, T, 500);
  EXPECT_LT(Windowed.Report.numDistinctPairs(), Full.numDistinctPairs());
}

TEST(WindowedDetectorTest, WholeTraceWindowEqualsUnwindowedRun) {
  // Windowed detection is *not* monotone in the window size (boundary
  // alignment moves), but a window covering the whole trace must agree
  // exactly with the unwindowed run, and any window can only see races
  // the full analysis sees on these planted models.
  WorkloadSpec Spec = workloadSpec("mergesort");
  Trace T = makeWorkload(Spec);
  RaceReport Full = testutil::run<HbDetector>(T);
  DetectorFactory Make = [](const Trace &Fragment) {
    return std::make_unique<HbDetector>(Fragment);
  };
  RunResult Whole = runDetectorWindowed(Make, T, T.size());
  EXPECT_EQ(Whole.Report.numDistinctPairs(), Full.numDistinctPairs());
  for (uint64_t W : {64u, 256u, 1024u}) {
    RunResult Win = runDetectorWindowed(Make, T, W);
    for (const RaceInstance &I : Win.Report.instances())
      EXPECT_TRUE(Full.hasPair(I.pair()))
          << "window " << W << " invented " << I.str(T);
  }
}

// ---- Cross-detector taxonomy (paper §1) --------------------------------------

TEST(TaxonomyTest, DetectorHierarchyOnWorkloads) {
  // WCP ⊇ HB ⊇ FastTrack-racy-vars; Eraser is incomparable (unsound).
  for (const char *Name : {"account", "pingpong", "mergesort"}) {
    Trace T = makeWorkload(workloadSpec(Name));
    RaceReport Hb = testutil::run<HbDetector>(T);
    RaceReport Wcp = testutil::run<WcpDetector>(T);
    for (const RaceInstance &I : Hb.instances())
      EXPECT_TRUE(Wcp.hasPair(I.pair())) << Name << ": " << I.str(T);
  }
}
