# tests/CheckRaceCliJson.cmake - Parse race_cli --json output for real.
#
# Part of rapidpp (PLDI'17 WCP reproduction).
#
# Runs `race_cli --json --hb --wcp` (built-in workload) and *parses* the
# output with CMake's string(JSON ...) — a structural check, not a regex:
# the schema race_cli promises (tool/mode/status/events/lanes with
# detector/races/instances/seconds fields) must actually be valid JSON
# with the right shapes and values. Invoked by the race_cli_json_parses
# ctest; requires -DRACE_CLI=<path-to-binary>.

if(NOT RACE_CLI)
  message(FATAL_ERROR "pass -DRACE_CLI=<path to race_cli>")
endif()

execute_process(
  COMMAND ${RACE_CLI} --json --hb --wcp
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "race_cli --json exited ${RC}: ${ERR}")
endif()

# Any parse failure in here is a FATAL_ERROR with ERROR_VARIABLE set.
string(JSON TOOL ERROR_VARIABLE JERR GET "${OUT}" tool)
if(JERR)
  message(FATAL_ERROR "not valid JSON (${JERR}): ${OUT}")
endif()
if(NOT TOOL STREQUAL "race_cli")
  message(FATAL_ERROR "tool = '${TOOL}', want 'race_cli'")
endif()

string(JSON STATUS GET "${OUT}" status)
if(NOT STATUS STREQUAL "ok")
  message(FATAL_ERROR "status = '${STATUS}', want 'ok'")
endif()

string(JSON MODE GET "${OUT}" mode)
if(NOT MODE STREQUAL "sequential")
  message(FATAL_ERROR "mode = '${MODE}', want 'sequential'")
endif()

string(JSON EVENTS GET "${OUT}" events)
if(NOT EVENTS GREATER 0)
  message(FATAL_ERROR "events = ${EVENTS}, want > 0")
endif()

string(JSON NLANES LENGTH "${OUT}" lanes)
if(NOT NLANES EQUAL 2)
  message(FATAL_ERROR "lanes length = ${NLANES}, want 2 (HB + WCP)")
endif()

set(WANT_DETECTORS "HB;WCP")
math(EXPR LAST "${NLANES} - 1")
foreach(I RANGE ${LAST})
  string(JSON DET GET "${OUT}" lanes ${I} detector)
  list(GET WANT_DETECTORS ${I} WANT)
  if(NOT DET STREQUAL "${WANT}")
    message(FATAL_ERROR "lane ${I} detector = '${DET}', want '${WANT}'")
  endif()
  string(JSON LSTATUS GET "${OUT}" lanes ${I} status)
  if(NOT LSTATUS STREQUAL "ok")
    message(FATAL_ERROR "lane ${I} status = '${LSTATUS}'")
  endif()
  # The built-in mergesort workload races; a zero here means the lane ran
  # but the report was dropped somewhere between session and JSON.
  string(JSON RACES GET "${OUT}" lanes ${I} races)
  if(NOT RACES GREATER 0)
    message(FATAL_ERROR "lane ${I} races = ${RACES}, want > 0")
  endif()
  string(JSON CONSUMED GET "${OUT}" lanes ${I} events_consumed)
  if(NOT CONSUMED EQUAL ${EVENTS})
    message(FATAL_ERROR
            "lane ${I} consumed ${CONSUMED} of ${EVENTS} events")
  endif()
  # Every lane carries a telemetry object (may be empty for detectors
  # that report nothing in batch mode, but the key must exist).
  string(JSON TELTYPE ERROR_VARIABLE TELERR TYPE "${OUT}" lanes ${I}
         telemetry)
  if(TELERR OR NOT TELTYPE STREQUAL "OBJECT")
    message(FATAL_ERROR "lane ${I} telemetry missing or not an object "
            "(${TELERR}/${TELTYPE})")
  endif()
  # The per-lane restarts key is deprecated out of the schema (see the
  # top-level compat note); its reappearance means a schema regression.
  string(JSON IGNORED ERROR_VARIABLE RERR GET "${OUT}" lanes ${I} restarts)
  if(NOT RERR)
    message(FATAL_ERROR "lane ${I} still emits the deprecated restarts key")
  endif()
endforeach()

# The WCP lane's queue telemetry (paper Table 1 column 11) must survive
# the detector's teardown into the JSON.
string(JSON WCPQ ERROR_VARIABLE WERR GET "${OUT}" lanes 1 telemetry
       wcp.queue_peak_abstract)
if(WERR)
  message(FATAL_ERROR "WCP lane telemetry lacks wcp.queue_peak_abstract: "
          "${WERR}")
endif()
if(NOT WCPQ GREATER 0)
  message(FATAL_ERROR "wcp.queue_peak_abstract = ${WCPQ}, want > 0")
endif()

# Deprecation forwarding address for tooling that greps for restarts.
string(JSON COMPAT ERROR_VARIABLE CERR GET "${OUT}" compat restarts)
if(CERR)
  message(FATAL_ERROR "top-level compat.restarts note missing: ${CERR}")
endif()

message(STATUS "race_cli --json: valid (${EVENTS} events, ${NLANES} lanes)")
