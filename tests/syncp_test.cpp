//===- tests/syncp_test.cpp - Sync-preserving detector lane -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Pins the SyncP lane (src/syncp/) three ways:
//
//  * separation — hand-built gadgets where the sync-preserving closure
//    finds a race WCP provably orders away (the POPL'21 motivation: a
//    correct reordering may *drop* critical sections, which no
//    partial-order detector can express), with the verdicts cross-checked
//    against the exhaustive witness search;
//  * soundness — every race SyncP reports on small traces (paper figures
//    and fuzzed) must come with a closure witness that the correct-
//    reordering checker accepts, and the exhaustive search must agree the
//    pair is racy;
//  * mode equivalence — sequential, fused, windowed and var-sharded runs
//    are bit-for-bit identical (the repo-wide determinism contract; the
//    differential and growth fuzzers extend this across the adversarial
//    workload matrix).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "api/AnalysisSession.h"
#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "reference/ClosureEngine.h"
#include "syncp/SyncPDetector.h"
#include "trace/TraceBuilder.h"
#include "verify/WitnessSearch.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

/// Rebuilds the closure index for \p T (what the detector builds online).
void buildIndex(const Trace &T, SyncPIndex &Idx) {
  for (EventIdx I = 0; I != T.size(); ++I)
    Idx.append(T.event(I), I, /*Publish=*/false);
}

/// Asserts that every race in \p Report has a closure witness that the
/// correct-reordering checker accepts — the detector's soundness argument,
/// executed.
void expectAllWitnessed(const Trace &T, const RaceReport &Report,
                        const std::string &Label) {
  SyncPIndex Idx;
  buildIndex(T, Idx);
  for (const RaceInstance &R : Report.instances()) {
    std::vector<EventIdx> Witness;
    ASSERT_TRUE(
        Idx.isSyncPreservingRace(R.EarlierIdx, R.LaterIdx, nullptr, &Witness))
        << Label << ": reported race lost its closure witness: " << R.str(T);
    ReorderingCheck C = checkRaceWitness(T, Witness);
    EXPECT_TRUE(C.Ok) << Label << ": closure witness for " << R.str(T)
                      << " is not a correct reordering: " << C.Error;
  }
}

/// Runs the SyncP lane through one run mode via the unified API.
RaceReport runMode(const Trace &T, RunMode Mode, uint64_t WindowEvents = 0,
                   uint32_t VarShards = 0) {
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::SyncP);
  Cfg.Mode = Mode;
  Cfg.WindowEvents = WindowEvents;
  Cfg.VarShards = VarShards;
  AnalysisResult R = analyzeTrace(Cfg, T);
  EXPECT_TRUE(R.ok()) << R.firstError().Message;
  return R.Lanes.empty() ? RaceReport() : std::move(R.Lanes.front().Report);
}

/// The two-thread separation gadget. WCP orders the w(x) pair through the
/// conflicting y-sections (rule (a) composed with thread order); dropping
/// t1's critical section entirely yields the sync-preserving witness
///   acq(l) w(y) rel(l) · w(x)@t1 · w(x)@t2.
Trace gadgetTwoThreads() {
  TraceBuilder B;
  B.write("t1", "x").acquire("t1", "l").write("t1", "y").release("t1", "l");
  B.acquire("t2", "l").write("t2", "y").release("t2", "l").write("t2", "x");
  return testutil::takeValid(B, /*RequireClosedSections=*/true);
}

/// The three-thread separation gadget: the WCP ordering chains through two
/// locks (y-sections on l, then z-sections on m), so no single-lock view
/// explains the order; the closure still drops t1's section and witnesses
/// the x pair.
Trace gadgetThreeThreads() {
  TraceBuilder B;
  B.write("t1", "x").acquire("t1", "l").write("t1", "y").release("t1", "l");
  B.acquire("t2", "l").write("t2", "y").release("t2", "l");
  B.acquire("t2", "m").write("t2", "z").release("t2", "m");
  B.acquire("t3", "m").read("t3", "z").release("t3", "m").write("t3", "x");
  return testutil::takeValid(B, /*RequireClosedSections=*/true);
}

/// Control variant of the two-thread gadget: t2 *reads* y, so including
/// t2's section forces t1's w(y) — and with it all of t1 up to and past
/// w(x) — into the ideal, swallowing the candidate. No sync-preserving
/// race (and no predictable race at all).
Trace gadgetNoRaceVariant() {
  TraceBuilder B;
  B.write("t1", "x").acquire("t1", "l").write("t1", "y").release("t1", "l");
  B.acquire("t2", "l").read("t2", "y").release("t2", "l").write("t2", "x");
  return testutil::takeValid(B, /*RequireClosedSections=*/true);
}

RandomTraceParams smallParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 3;
  P.NumLocks = 1 + Seed % 3;
  P.NumVars = 2 + Seed % 3;
  P.OpsPerThread = 10 + Seed % 8;
  P.MaxLockNesting = 1 + Seed % 2;
  P.WithForkJoin = Seed % 5 == 0;
  return P;
}

} // namespace

// ---- Separation: races WCP provably misses ---------------------------------

TEST(SyncPSeparation, TwoThreadGadgetBeatsWcp) {
  Trace T = gadgetTwoThreads();
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  EXPECT_EQ(Wcp.numDistinctPairs(), 0u)
      << "gadget broken: WCP was supposed to order the x accesses";
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  ASSERT_GE(Syncp.numDistinctPairs(), 1u)
      << "SyncP must witness the x race WCP misses";
  EXPECT_EQ(testutil::racyVars(Syncp, T), std::set<std::string>{"x"});
  expectAllWitnessed(T, Syncp, "two-thread gadget");
  // The exhaustive search agrees the pair is a real predictable race.
  WitnessResult W = findWitness(T, Syncp.instances().front().pair());
  ASSERT_TRUE(W.SearchExhaustive);
  EXPECT_EQ(W.Kind, WitnessKind::Race);
}

TEST(SyncPSeparation, ThreeThreadLockChainBeatsWcp) {
  Trace T = gadgetThreeThreads();
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  EXPECT_EQ(Wcp.numDistinctPairs(), 0u)
      << "gadget broken: the two-lock WCP chain was supposed to order x";
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  ASSERT_GE(Syncp.numDistinctPairs(), 1u);
  EXPECT_EQ(testutil::racyVars(Syncp, T), std::set<std::string>{"x"});
  expectAllWitnessed(T, Syncp, "three-thread gadget");
  WitnessResult W = findWitness(T, Syncp.instances().front().pair());
  ASSERT_TRUE(W.SearchExhaustive);
  EXPECT_EQ(W.Kind, WitnessKind::Race);
}

TEST(SyncPSeparation, ReadVariantSwallowsTheCandidate) {
  Trace T = gadgetNoRaceVariant();
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  EXPECT_EQ(Syncp.numDistinctPairs(), 0u)
      << "the read of y pins t2's section behind all of t1 — no correct "
         "reordering co-enables the x accesses";
  WitnessResult W = findAnyWitness(T);
  ASSERT_TRUE(W.SearchExhaustive);
  EXPECT_EQ(W.Kind, WitnessKind::None);
}

// ---- Closure unit behaviour -------------------------------------------------

TEST(SyncPClosure, SameLockSectionsAreNotRacy) {
  TraceBuilder B;
  B.acquire("t1", "l").write("t1", "x").release("t1", "l");
  B.acquire("t2", "l").write("t2", "x").release("t2", "l");
  Trace T = testutil::takeValid(B, true);
  SyncPIndex Idx;
  buildIndex(T, Idx);
  // w(x)@1 vs w(x)@4: including acq@3 displaces acq@0 as the lock maximum
  // and demands rel@2 — past w(x)@1 in its thread, swallowing it.
  EXPECT_FALSE(Idx.isSyncPreservingRace(1, 4, nullptr, nullptr));
  EXPECT_EQ(testutil::run<SyncPDetector>(T).numDistinctPairs(), 0u);
}

TEST(SyncPClosure, UnprotectedConflictIsRacyWithMinimalIdeal) {
  TraceBuilder B;
  B.write("t1", "x").write("t2", "x");
  Trace T = testutil::takeValid(B, true);
  SyncPIndex Idx;
  buildIndex(T, Idx);
  std::vector<EventIdx> Witness;
  ASSERT_TRUE(Idx.isSyncPreservingRace(0, 1, nullptr, &Witness));
  // Empty ideal: just the two candidates.
  EXPECT_EQ(Witness, (std::vector<EventIdx>{0, 1}));
  EXPECT_TRUE(checkRaceWitness(T, Witness).Ok);
}

TEST(SyncPClosure, ReadPullsItsWriterAndItsLocks) {
  // t2's read of y sees t1's locked write, so the witness must replay
  // t1's whole critical section before t2's prefix — and the final races
  // on z stay co-enabled regardless.
  TraceBuilder B;
  B.acquire("t1", "l").write("t1", "y").release("t1", "l").write("t1", "z");
  B.read("t2", "y").write("t2", "z");
  Trace T = testutil::takeValid(B, true);
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  EXPECT_EQ(testutil::racyVars(Syncp, T),
            (std::set<std::string>{"y", "z"}));
  expectAllWitnessed(T, Syncp, "read-pulls-writer");
}

TEST(SyncPClosure, ForkJoinOrderIsRespected) {
  TraceBuilder B;
  B.declareThread("main");
  B.declareThread("child");
  B.write("main", "x").fork("main", "child");
  B.write("child", "x");
  B.join("main", "child").write("main", "x");
  Trace T = testutil::takeValid(B, true);
  // All three x writes are thread-ordered: no candidates survive.
  EXPECT_EQ(testutil::run<SyncPDetector>(T).numDistinctPairs(), 0u);
}

// ---- Soundness over the paper's figures and fuzzed traces -------------------

TEST(SyncPPaperTraces, SoundOnEveryFigure) {
  for (const PaperTrace &P : allPaperTraces()) {
    RaceReport Syncp = testutil::run<SyncPDetector>(P.T);
    expectAllWitnessed(P.T, Syncp, P.Name);
    if (!P.PredictableRace) {
      // Strong per-report soundness: a trace with no predictable race can
      // have no sync-preserving one (figures 1a, 2a and the deadlock-only
      // figure 5).
      EXPECT_EQ(Syncp.numDistinctPairs(), 0u)
          << P.Name << ": " << Syncp.str(P.T);
    }
  }
}

class SyncPSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyncPSoundnessTest, EveryReportHasAValidWitness) {
  Trace T = randomTrace(smallParams(GetParam()));
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  expectAllWitnessed(T, Syncp, "seed " + std::to_string(GetParam()));
  // Reported pairs must be unordered by the hard (thread) order the
  // reference closure engine computes — the prefilter may only ever prune.
  ClosureEngine Engine(T);
  for (const RaceInstance &R : Syncp.instances())
    EXPECT_FALSE(Engine.ordered(OrderKind::Hard, R.EarlierIdx, R.LaterIdx))
        << R.str(T);
}

TEST_P(SyncPSoundnessTest, ExhaustiveSearchConfirmsFirstReport) {
  Trace T = randomTrace(smallParams(GetParam() ^ 0x3c3c));
  RaceReport Syncp = testutil::run<SyncPDetector>(T);
  if (Syncp.instances().empty())
    GTEST_SKIP() << "no SyncP race in this trace";
  const RaceInstance &First = Syncp.instances().front();
  WitnessResult W = findWitness(T, First.pair());
  if (!W.SearchExhaustive && W.Kind == WitnessKind::None)
    GTEST_SKIP() << "state space too large to conclude";
  // Unlike WCP's weak soundness, *every* SyncP report carries its own
  // witness — the search must find a race (not merely a deadlock).
  EXPECT_EQ(W.Kind, WitnessKind::Race) << First.str(T);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SyncPSoundnessTest,
                         ::testing::Range<uint64_t>(1, 61));

// ---- Mode equivalence and telemetry -----------------------------------------

class SyncPModeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SyncPModeTest, AllModesMatchTheSequentialWalk) {
  const uint64_t Seed = GetParam();
  RandomTraceParams P = smallParams(Seed);
  P.OpsPerThread = 20 + Seed % 13;
  Trace T = randomTrace(P);
  RaceReport Want = testutil::run<SyncPDetector>(T);

  testutil::expectSameReport(runMode(T, RunMode::Sequential), Want, T,
                             "sequential");
  testutil::expectSameReport(runMode(T, RunMode::Fused), Want, T, "fused");
  for (uint32_t Shards : {1u, 2u, 5u})
    testutil::expectSameReport(
        runMode(T, RunMode::VarSharded, 0, Shards), Want, T,
        "var-sharded x" + std::to_string(Shards));
  // Windowed is the deliberately handicapped baseline: it must still run
  // (fresh index per window, fragment-local event ids) and every window-
  // local report entry must also be in the full-trace report.
  RaceReport Windowed = runMode(T, RunMode::Windowed, 16);
  for (const RaceInstance &R : Windowed.instances())
    // pairDistance is 0 exactly when the pair is unknown (real pairs have
    // distance >= 1).
    EXPECT_GT(Want.pairDistance(R.pair()), 0u) << R.str(T);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SyncPModeTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(SyncPTelemetry, CountersSurfaceThroughTheLane) {
  Trace T = gadgetTwoThreads();
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::SyncP);
  AnalysisResult R = analyzeTrace(Cfg, T);
  ASSERT_TRUE(R.ok());
  uint64_t Candidates = 0, Iterations = UINT64_MAX, Peak = UINT64_MAX;
  for (const MetricSample &S : R.Lanes.front().Telemetry) {
    if (S.Name == "syncp.candidate_pairs")
      Candidates = S.Value;
    else if (S.Name == "syncp.closure_iterations")
      Iterations = S.Value;
    else if (S.Name == "syncp.ideal_peak")
      Peak = S.Value;
  }
  EXPECT_GE(Candidates, 1u) << "the x pair must have reached the closure";
  EXPECT_NE(Iterations, UINT64_MAX) << "closure_iterations sample missing";
  ASSERT_NE(Peak, UINT64_MAX) << "ideal_peak sample missing";
  EXPECT_GE(Peak, 3u) << "the x-pair ideal holds t2's critical section";
}

TEST(SyncPTelemetry, VarShardedRunCountsItsClosureWork) {
  // The candidate checks run in shard drains there — the lane's telemetry
  // snapshot must still see them (the phase-3 re-collection).
  Trace T = gadgetThreeThreads();
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::SyncP);
  Cfg.Mode = RunMode::VarSharded;
  Cfg.VarShards = 3;
  AnalysisResult R = analyzeTrace(Cfg, T);
  ASSERT_TRUE(R.ok());
  uint64_t Candidates = 0;
  for (const MetricSample &S : R.Lanes.front().Telemetry)
    if (S.Name == "syncp.candidate_pairs")
      Candidates = S.Value;
  EXPECT_GE(Candidates, 1u);
}
