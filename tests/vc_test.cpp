//===- tests/vc_test.cpp - Vector clocks and epochs ---------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"
#include "vc/Epoch.h"
#include "vc/VectorClock.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(VectorClockTest, BottomIsLeastElement) {
  VectorClock Bot(4), V(4);
  V.set(ThreadId(2), 7);
  EXPECT_TRUE(Bot.lessOrEqual(V));
  EXPECT_FALSE(V.lessOrEqual(Bot));
  EXPECT_TRUE(Bot.lessOrEqual(Bot));
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(ThreadId(0), 5);
  A.set(ThreadId(1), 2);
  B.set(ThreadId(1), 9);
  B.set(ThreadId(2), 1);
  VectorClock J = join(A, B);
  EXPECT_EQ(J.get(ThreadId(0)), 5u);
  EXPECT_EQ(J.get(ThreadId(1)), 9u);
  EXPECT_EQ(J.get(ThreadId(2)), 1u);
}

TEST(VectorClockTest, ComparisonIsPartialNotTotal) {
  VectorClock A(2), B(2);
  A.set(ThreadId(0), 1);
  B.set(ThreadId(1), 1);
  EXPECT_FALSE(A.lessOrEqual(B));
  EXPECT_FALSE(B.lessOrEqual(A));
}

TEST(VectorClockTest, ComponentAssignment) {
  VectorClock V(3);
  V.set(ThreadId(1), 4);
  EXPECT_EQ(V.get(ThreadId(1)), 4u);
  V.set(ThreadId(1), 2); // Assignment, not join: may decrease.
  EXPECT_EQ(V.get(ThreadId(1)), 2u);
}

TEST(VectorClockTest, ClearResetsToBottom) {
  VectorClock V(3);
  V.set(ThreadId(0), 9);
  V.clear();
  EXPECT_EQ(V, VectorClock(3));
}

TEST(VectorClockTest, StrRendering) {
  VectorClock V(3);
  V.set(ThreadId(1), 2);
  EXPECT_EQ(V.str(), "[0, 2, 0]");
}

// Lattice laws, checked on random clocks.
class VectorClockLatticeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorClockLatticeTest, JoinLaws) {
  Prng Rng(GetParam());
  uint32_t N = 1 + Rng.nextBelow(8);
  auto random = [&] {
    VectorClock V(N);
    for (uint32_t I = 0; I < N; ++I)
      V.set(ThreadId(I), static_cast<ClockValue>(Rng.nextBelow(100)));
    return V;
  };
  VectorClock A = random(), B = random(), C = random();
  // Commutativity / associativity / idempotence.
  EXPECT_EQ(join(A, B), join(B, A));
  EXPECT_EQ(join(join(A, B), C), join(A, join(B, C)));
  EXPECT_EQ(join(A, A), A);
  // Join is the least upper bound.
  EXPECT_TRUE(A.lessOrEqual(join(A, B)));
  EXPECT_TRUE(B.lessOrEqual(join(A, B)));
  VectorClock U = join(A, B);
  if (A.lessOrEqual(C) && B.lessOrEqual(C)) {
    EXPECT_TRUE(U.lessOrEqual(C));
  }
  // Order is antisymmetric.
  if (A.lessOrEqual(B) && B.lessOrEqual(A)) {
    EXPECT_EQ(A, B);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, VectorClockLatticeTest,
                         ::testing::Range<uint64_t>(1, 30));

TEST(EpochTest, NoneIsBottom) {
  VectorClock V(3);
  EXPECT_TRUE(Epoch::none().lessOrEqual(V));
}

TEST(EpochTest, ComparesAgainstOwnComponent) {
  VectorClock V(3);
  V.set(ThreadId(1), 5);
  EXPECT_TRUE(Epoch(5, ThreadId(1)).lessOrEqual(V));
  EXPECT_FALSE(Epoch(6, ThreadId(1)).lessOrEqual(V));
  EXPECT_FALSE(Epoch(1, ThreadId(2)).lessOrEqual(V));
}
