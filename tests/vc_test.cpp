//===- tests/vc_test.cpp - Vector clocks and epochs ---------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Prng.h"
#include "vc/Epoch.h"
#include "vc/VectorClock.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(VectorClockTest, BottomIsLeastElement) {
  VectorClock Bot(4), V(4);
  V.set(ThreadId(2), 7);
  EXPECT_TRUE(Bot.lessOrEqual(V));
  EXPECT_FALSE(V.lessOrEqual(Bot));
  EXPECT_TRUE(Bot.lessOrEqual(Bot));
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock A(3), B(3);
  A.set(ThreadId(0), 5);
  A.set(ThreadId(1), 2);
  B.set(ThreadId(1), 9);
  B.set(ThreadId(2), 1);
  VectorClock J = join(A, B);
  EXPECT_EQ(J.get(ThreadId(0)), 5u);
  EXPECT_EQ(J.get(ThreadId(1)), 9u);
  EXPECT_EQ(J.get(ThreadId(2)), 1u);
}

TEST(VectorClockTest, ComparisonIsPartialNotTotal) {
  VectorClock A(2), B(2);
  A.set(ThreadId(0), 1);
  B.set(ThreadId(1), 1);
  EXPECT_FALSE(A.lessOrEqual(B));
  EXPECT_FALSE(B.lessOrEqual(A));
}

TEST(VectorClockTest, ComponentAssignment) {
  VectorClock V(3);
  V.set(ThreadId(1), 4);
  EXPECT_EQ(V.get(ThreadId(1)), 4u);
  V.set(ThreadId(1), 2); // Assignment, not join: may decrease.
  EXPECT_EQ(V.get(ThreadId(1)), 2u);
}

TEST(VectorClockTest, ClearResetsToBottom) {
  VectorClock V(3);
  V.set(ThreadId(0), 9);
  V.clear();
  EXPECT_EQ(V, VectorClock(3));
}

TEST(VectorClockTest, StrRendering) {
  VectorClock V(3);
  V.set(ThreadId(1), 2);
  EXPECT_EQ(V.str(), "[0, 2, 0]");
}

// Implicit-zero extension (growable clocks): components at or beyond the
// physical size behave as 0, and every operation is legal across clocks
// of different physical sizes.
TEST(VectorClockTest, ImplicitZeroReadsAndGrowth) {
  VectorClock V(2);
  EXPECT_EQ(V.get(ThreadId(7)), 0u); // Beyond physical size: implicit 0.
  V.set(ThreadId(7), 0);             // Zero assignment past the end...
  EXPECT_EQ(V.size(), 2u);           // ...is the identity, no growth.
  V.set(ThreadId(4), 9);
  EXPECT_EQ(V.size(), 5u); // Nonzero assignment grows to fit.
  EXPECT_EQ(V.get(ThreadId(4)), 9u);
  EXPECT_EQ(V.get(ThreadId(2)), 0u); // Filled-in components start at 0.
  EXPECT_EQ(V.get(ThreadId(3)), 0u);
}

TEST(VectorClockTest, MixedSizeJoinAndComparison) {
  VectorClock Small(2), Big(5);
  Small.set(ThreadId(0), 3);
  Big.set(ThreadId(1), 4);
  Big.set(ThreadId(4), 2);

  // Join grows the receiver only as far as needed; values land pointwise.
  VectorClock J = Small;
  J.joinWith(Big);
  EXPECT_EQ(J.get(ThreadId(0)), 3u);
  EXPECT_EQ(J.get(ThreadId(1)), 4u);
  EXPECT_EQ(J.get(ThreadId(4)), 2u);

  // A narrow clock compares against a wide one (and vice versa) with
  // implicit-zero tails.
  EXPECT_TRUE(Small.lessOrEqual(J));
  EXPECT_TRUE(Big.lessOrEqual(J));
  EXPECT_FALSE(J.lessOrEqual(Small));
  VectorClock WideZeros(8);
  EXPECT_TRUE(WideZeros.lessOrEqual(Small)); // All-zero tail ⊑ anything.
  EXPECT_TRUE(VectorClock(0).lessOrEqual(Small));
}

TEST(VectorClockTest, EqualityIsSemanticAcrossSizes) {
  VectorClock A(2), B(6);
  A.set(ThreadId(1), 5);
  B.set(ThreadId(1), 5);
  EXPECT_EQ(A, B); // Trailing zeros are invisible.
  EXPECT_EQ(VectorClock(0), VectorClock(9));
  B.set(ThreadId(5), 1);
  EXPECT_NE(A, B);
}

// The growth laws compose with the lattice laws: a clock and its
// zero-extended copy are interchangeable in every operation.
TEST(VectorClockTest, ZeroExtensionIsObservationallyEquivalent) {
  VectorClock V(3);
  V.set(ThreadId(0), 2);
  V.set(ThreadId(2), 7);
  VectorClock Wide(10);
  Wide.joinWith(V); // Wide == V semantically, physically size 10.
  EXPECT_EQ(V, Wide);
  VectorClock Probe(4);
  Probe.set(ThreadId(3), 1);
  EXPECT_EQ(join(Probe, V), join(Probe, Wide));
  EXPECT_EQ(V.lessOrEqual(Probe), Wide.lessOrEqual(Probe));
  EXPECT_EQ(Probe.lessOrEqual(V), Probe.lessOrEqual(Wide));
}

// Lattice laws, checked on random clocks.
class VectorClockLatticeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorClockLatticeTest, JoinLaws) {
  Prng Rng(GetParam());
  uint32_t N = 1 + Rng.nextBelow(8);
  auto random = [&] {
    VectorClock V(N);
    for (uint32_t I = 0; I < N; ++I)
      V.set(ThreadId(I), static_cast<ClockValue>(Rng.nextBelow(100)));
    return V;
  };
  VectorClock A = random(), B = random(), C = random();
  // Commutativity / associativity / idempotence.
  EXPECT_EQ(join(A, B), join(B, A));
  EXPECT_EQ(join(join(A, B), C), join(A, join(B, C)));
  EXPECT_EQ(join(A, A), A);
  // Join is the least upper bound.
  EXPECT_TRUE(A.lessOrEqual(join(A, B)));
  EXPECT_TRUE(B.lessOrEqual(join(A, B)));
  VectorClock U = join(A, B);
  if (A.lessOrEqual(C) && B.lessOrEqual(C)) {
    EXPECT_TRUE(U.lessOrEqual(C));
  }
  // Order is antisymmetric.
  if (A.lessOrEqual(B) && B.lessOrEqual(A)) {
    EXPECT_EQ(A, B);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, VectorClockLatticeTest,
                         ::testing::Range<uint64_t>(1, 30));

TEST(EpochTest, NoneIsBottom) {
  VectorClock V(3);
  EXPECT_TRUE(Epoch::none().lessOrEqual(V));
}

TEST(EpochTest, ComparesAgainstOwnComponent) {
  VectorClock V(3);
  V.set(ThreadId(1), 5);
  EXPECT_TRUE(Epoch(5, ThreadId(1)).lessOrEqual(V));
  EXPECT_FALSE(Epoch(6, ThreadId(1)).lessOrEqual(V));
  EXPECT_FALSE(Epoch(1, ThreadId(2)).lessOrEqual(V));
}
