//===- tests/obs_test.cpp - Observability layer: metrics + timelines ----------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Pins the obs/ layer's contract:
//
//   1. instrument semantics — Counter adds, Gauge last-write-wins (plus
//      add/sub), HighWater retains the maximum; registration dedups by
//      name so racing scopes share one slot;
//   2. zero-cost disable — a disabled registry hands out null handles
//      whose updates are no-ops, and snapshots stay empty;
//   3. snapshot safety — snapshot() may run concurrently with updaters
//      (each value is one relaxed load; counters never appear to go
//      backwards across snapshots);
//   4. recorder basics — track interning, thread binding, span/counter
//      emission, and the trace_event JSON envelope;
//   5. end-to-end under load — a streaming session's partialResult() and
//      exportTimeline() are safe to call while the producer is still
//      feeding (the TSan target of this file), and the final result
//      carries the session and per-lane telemetry the catalog promises.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisSession.h"
#include "gen/RandomTraceGen.h"
#include "obs/Metrics.h"
#include "obs/TraceRecorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace rapid;

namespace {

const MetricSample *findSample(const std::vector<MetricSample> &Samples,
                               const std::string &Name) {
  for (const MetricSample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

// ---- Instrument semantics ----------------------------------------------------

TEST(MetricsTest, CounterGaugeHighWaterSemantics) {
  MetricsRegistry Reg;
  Counter C = Reg.counter("c");
  Gauge G = Reg.gauge("g");
  HighWater H = Reg.highWater("h");
  ASSERT_TRUE(C.enabled());
  ASSERT_TRUE(G.enabled());
  ASSERT_TRUE(H.enabled());

  C.add();
  C.add(41);
  G.set(100);
  G.add(5);
  G.sub(2);
  H.observe(7);
  H.observe(3); // Lower: must not regress the retained max.
  H.observe(9);

  std::vector<MetricSample> S = Reg.snapshot();
  ASSERT_EQ(S.size(), 3u);
  // snapshot() sorts by name: c, g, h.
  EXPECT_EQ(S[0].Name, "c");
  EXPECT_EQ(S[0].Kind, MetricKind::Counter);
  EXPECT_EQ(S[0].Value, 42u);
  EXPECT_EQ(S[1].Name, "g");
  EXPECT_EQ(S[1].Kind, MetricKind::Gauge);
  EXPECT_EQ(S[1].Value, 103u);
  EXPECT_EQ(S[2].Name, "h");
  EXPECT_EQ(S[2].Kind, MetricKind::HighWater);
  EXPECT_EQ(S[2].Value, 9u);
}

TEST(MetricsTest, RegistrationDedupsByName) {
  MetricsRegistry Reg;
  Counter A = Reg.counter("shared");
  Counter B = Reg.counter("shared");
  A.add(2);
  B.add(3);
  std::vector<MetricSample> S = Reg.snapshot();
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Value, 5u);
}

TEST(MetricsTest, DisabledRegistryHandsOutNullHandles) {
  MetricsRegistry Reg(false);
  EXPECT_FALSE(Reg.enabled());
  Counter C = Reg.counter("c");
  Gauge G = Reg.gauge("g");
  HighWater H = Reg.highWater("h");
  EXPECT_FALSE(C.enabled());
  EXPECT_FALSE(G.enabled());
  EXPECT_FALSE(H.enabled());
  // All no-ops; nothing registers, nothing to snapshot.
  C.add(10);
  G.set(10);
  H.observe(10);
  EXPECT_TRUE(Reg.snapshot().empty());
  EXPECT_TRUE(Reg.snapshotPrefix("c").empty());
}

TEST(MetricsTest, ScopePrefixesNestAndDefaultDisabled) {
  MetricsRegistry Reg;
  MetricsScope Lane(&Reg, "lane.0.");
  Lane.counter("batches").add(4);
  Lane.nest("wcp.").gauge("depth").set(11);

  std::vector<MetricSample> S = Reg.snapshotPrefix("lane.0.");
  ASSERT_EQ(S.size(), 2u);
  // Prefix stripped, still name-sorted.
  EXPECT_EQ(S[0].Name, "batches");
  EXPECT_EQ(S[0].Value, 4u);
  EXPECT_EQ(S[1].Name, "wcp.depth");
  EXPECT_EQ(S[1].Value, 11u);
  // Unrelated prefixes see nothing.
  EXPECT_TRUE(Reg.snapshotPrefix("lane.1.").empty());

  MetricsScope None;
  EXPECT_FALSE(None.enabled());
  EXPECT_FALSE(None.counter("x").enabled());
  EXPECT_FALSE(None.nest("y.").highWater("z").enabled());
}

// ---- Concurrent updates vs snapshots ----------------------------------------

TEST(MetricsTest, SnapshotsAreConsistentUnderConcurrentUpdaters) {
  MetricsRegistry Reg;
  constexpr int kThreads = 4;
  constexpr uint64_t kAddsPerThread = 20000;

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Updaters;
  for (int T = 0; T != kThreads; ++T)
    Updaters.emplace_back([&Reg, T] {
      // Register from the worker itself: registration must be safe to
      // race with other registrations and with snapshots.
      Counter C = Reg.counter("hits");
      HighWater H = Reg.highWater("peak");
      Gauge G = Reg.gauge("last");
      for (uint64_t I = 0; I != kAddsPerThread; ++I) {
        C.add();
        H.observe(T * kAddsPerThread + I);
        G.set(I);
      }
    });

  // Snapshot continuously while the updaters hammer: counters must be
  // monotone across snapshots and every value within its legal range.
  std::thread Snapshotter([&] {
    uint64_t LastHits = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      std::vector<MetricSample> S = Reg.snapshot();
      if (const MetricSample *Hits = findSample(S, "hits")) {
        EXPECT_GE(Hits->Value, LastHits);
        EXPECT_LE(Hits->Value, uint64_t(kThreads) * kAddsPerThread);
        LastHits = Hits->Value;
      }
      if (const MetricSample *Peak = findSample(S, "peak")) {
        EXPECT_LT(Peak->Value, uint64_t(kThreads) * kAddsPerThread);
      }
    }
  });

  for (std::thread &T : Updaters)
    T.join();
  Stop.store(true, std::memory_order_release);
  Snapshotter.join();

  std::vector<MetricSample> S = Reg.snapshot();
  const MetricSample *Hits = findSample(S, "hits");
  ASSERT_NE(Hits, nullptr);
  EXPECT_EQ(Hits->Value, uint64_t(kThreads) * kAddsPerThread);
  const MetricSample *Peak = findSample(S, "peak");
  ASSERT_NE(Peak, nullptr);
  EXPECT_EQ(Peak->Value, uint64_t(kThreads) * kAddsPerThread - 1);
}

// ---- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorderTest, TracksInternAndThreadsBind) {
  TraceRecorder Rec;
  uint32_t A = Rec.track("lane:HB");
  uint32_t B = Rec.track("lane:WCP");
  EXPECT_NE(A, B);
  EXPECT_EQ(Rec.track("lane:HB"), A); // Interned, not duplicated.

  EXPECT_EQ(Rec.currentThreadTrack(), TraceRecorder::NoTrack);
  Rec.bindCurrentThread(B);
  EXPECT_EQ(Rec.currentThreadTrack(), B);

  // A different thread starts unbound and binding it is invisible here.
  std::thread Other([&Rec, A] {
    EXPECT_EQ(Rec.currentThreadTrack(), TraceRecorder::NoTrack);
    Rec.bindCurrentThread(A);
    EXPECT_EQ(Rec.currentThreadTrack(), A);
  });
  Other.join();
  EXPECT_EQ(Rec.currentThreadTrack(), B);
}

TEST(TraceRecorderTest, ExportsTraceEventEnvelope) {
  TraceRecorder Rec;
  uint32_t T = Rec.track("lane:HB");
  int64_t Start = Rec.nowUs();
  Rec.span(T, "consume", Start, 25);
  Rec.counter("published", Start, 128);
  // Spans against NoTrack (an unbound thread) are dropped, not emitted.
  Rec.span(TraceRecorder::NoTrack, "dropped", Start, 1);

  std::string J = Rec.exportJson();
  EXPECT_NE(J.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(J.find("\"lane:HB\""), std::string::npos);
  EXPECT_NE(J.find("\"consume\""), std::string::npos);
  EXPECT_NE(J.find("\"published\""), std::string::npos);
  EXPECT_EQ(J.find("dropped"), std::string::npos);
}

// ---- Session telemetry under concurrent snapshots ---------------------------

TEST(ObsSessionTest, PartialSnapshotsRaceIngestionSafely) {
  RandomTraceParams P;
  P.Seed = 7;
  P.NumThreads = 4;
  P.NumLocks = 3;
  P.NumVars = 6;
  P.OpsPerThread = 400;
  Trace T = randomTrace(P);

  AnalysisConfig Cfg;
  Cfg.Mode = RunMode::Sequential;
  Cfg.Threads = 2;
  Cfg.Timeline = true; // Exercise the recorder under the same race.
  Cfg.addDetector(DetectorKind::Hb);
  Cfg.addDetector(DetectorKind::Wcp);

  AnalysisSession S(Cfg);
  std::atomic<bool> Done{false};
  AnalysisResult Final;
  // Single-producer contract: declares, feeds and finish() stay on one
  // thread; partialResult()/exportTimeline() race it from the main
  // thread. Done is set on every exit path or the poll loop below spins
  // forever.
  std::thread Producer([&] {
    struct DoneGuard {
      std::atomic<bool> &Flag;
      ~DoneGuard() { Flag.store(true, std::memory_order_release); }
    } Guard{Done};
    // Push ingestion: re-declare the generated trace's tables in id
    // order so the fed events' dense ids resolve.
    for (uint32_t I = 0; I != T.numThreads(); ++I)
      S.declareThread(T.threadName(ThreadId(I)));
    for (uint32_t I = 0; I != T.numLocks(); ++I)
      S.declareLock(T.lockName(LockId(I)));
    for (uint32_t I = 0; I != T.numVars(); ++I)
      S.declareVar(T.varName(VarId(I)));
    for (uint32_t I = 0; I != T.numLocs(); ++I)
      S.declareLoc(T.locName(LocId(I)));
    const std::vector<Event> &Events = T.events();
    constexpr size_t kBatch = 64;
    for (size_t I = 0; I < Events.size(); I += kBatch) {
      size_t E = std::min(Events.size(), I + kBatch);
      std::vector<Event> Batch(Events.begin() + I, Events.begin() + E);
      ASSERT_TRUE(S.feed(Batch).ok());
    }
    Final = S.finish();
  });

  // Throttled: an unthrottled poll loop starves the producer and the
  // consumer lanes on a single-core host.
  while (!Done.load(std::memory_order_acquire)) {
    AnalysisResult Mid = S.partialResult();
    for (const LaneReport &L : Mid.Lanes)
      EXPECT_TRUE(std::is_sorted(
          L.Telemetry.begin(), L.Telemetry.end(),
          [](const MetricSample &A, const MetricSample &B) {
            return A.Name < B.Name;
          }));
    // Mid-stream timelines are valid (possibly partial) documents.
    std::string Timeline = S.exportTimeline();
    EXPECT_NE(Timeline.find("traceEvents"), std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Producer.join();

  ASSERT_TRUE(Final.ok()) << Final.firstError().str();
  const MetricSample *Published =
      findSample(Final.Telemetry, "publish.events");
  ASSERT_NE(Published, nullptr);
  EXPECT_EQ(Published->Value, T.size());
  // Per-lane blocks: stream counters plus the detector's own samples
  // (WCP's queue telemetry must survive lane teardown).
  ASSERT_EQ(Final.Lanes.size(), 2u);
  for (const LaneReport &L : Final.Lanes) {
    const MetricSample *Consumed = findSample(L.Telemetry, "batches");
    ASSERT_NE(Consumed, nullptr) << L.DetectorName;
    EXPECT_GT(Consumed->Value, 0u) << L.DetectorName;
  }
  const MetricSample *WcpEvents =
      findSample(Final.Lanes[1].Telemetry, "wcp.events_processed");
  ASSERT_NE(WcpEvents, nullptr);
  EXPECT_EQ(WcpEvents->Value, T.size());

  // Disabled sessions produce empty telemetry and no timeline.
  AnalysisConfig Off = Cfg;
  Off.Metrics = false;
  Off.Timeline = false;
  AnalysisSession S2(Off);
  ASSERT_TRUE(S2.feedTrace(T).ok());
  AnalysisResult R2 = S2.finish();
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(R2.Telemetry.empty());
  for (const LaneReport &L : R2.Lanes)
    EXPECT_TRUE(L.Telemetry.empty());
  EXPECT_TRUE(S2.exportTimeline().empty());
}

} // namespace
