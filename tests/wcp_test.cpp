//===- tests/wcp_test.cpp - Algorithm 1 internals ------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// White-box tests of the WCP detector: clock evolution on hand-computed
// traces, rule-by-rule edge effects, queue behaviour (including the
// paper's Figure 6), and the telemetry the Table 1 harness consumes.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/PaperTraces.h"
#include "trace/TraceBuilder.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

/// Runs the detector and returns per-event effective C timestamps.
std::vector<VectorClock> timestamps(const Trace &T) {
  return testutil::captureTimestamps<WcpDetector>(T);
}

} // namespace

TEST(WcpClockTest, LocalClockIncrementsOnlyAfterRelease) {
  // N_t advances exactly when the previous event was a release; the own
  // component of C_e equals N at e.
  TraceBuilder B;
  B.read("t1", "a");        // N=1
  B.write("t1", "a");       // N=1
  B.acquire("t1", "l");     // N=1
  B.release("t1", "l");     // N=1 (increment happens *before next event*)
  B.read("t1", "a");        // N=2
  B.acquire("t1", "l");     // N=2
  B.release("t1", "l");     // N=2
  B.write("t1", "a");       // N=3
  Trace T = testutil::takeValid(B);
  std::vector<VectorClock> C = timestamps(T);
  ClockValue Expected[] = {1, 1, 1, 1, 2, 2, 2, 3};
  for (EventIdx I = 0; I != T.size(); ++I)
    EXPECT_EQ(C[I].get(ThreadId(0)), Expected[I]) << "event " << I;
}

TEST(WcpClockTest, RuleADeliversReleaseTimeToConflictingAccess) {
  // fig2b shape: the r(x) inside the second section receives rel(l)'s
  // H-time (rule a), the earlier r(y) does not.
  Trace T = paperFig2b().T;
  std::vector<VectorClock> C = timestamps(T);
  // Events: 0 w(y) 1 acq 2 w(x) 3 rel | 4 acq 5 r(y) 6 r(x) 7 rel.
  ClockValue T1AtRel = C[3].get(ThreadId(0));
  EXPECT_LT(C[5].get(ThreadId(0)), T1AtRel)
      << "r(y) must not know t1's release";
  EXPECT_GE(C[6].get(ThreadId(0)), T1AtRel)
      << "r(x) must know t1's release via rule (a)";
}

TEST(WcpClockTest, AcquireReceivesWcpKnowledgeOfLastReleaseOnly) {
  // P_ℓ carries the *WCP-predecessor* time of the last release, not its
  // HB time: an acquire after an unrelated critical section learns
  // nothing about the other thread.
  TraceBuilder B;
  B.write("t1", "a", "w1");
  B.acquire("t1", "l");
  B.release("t1", "l");
  B.acquire("t2", "l");
  B.read("t2", "a", "r2"); // Conflicts with w1 but no WCP edge exists.
  B.release("t2", "l");
  Trace T = testutil::takeValid(B);
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_EQ(R.numDistinctPairs(), 1u)
      << "HB would order these; WCP must report the race";
}

TEST(WcpQueueTest, Fig6ExercisesTheQueues) {
  PaperTrace P = paperFig6();
  WcpDetector D(P.T);
  for (EventIdx I = 0; I != P.T.size(); ++I)
    D.processEvent(P.T.event(I), I);
  // The m-sections of t1/t2/t3 interlock: entries must have been both
  // enqueued and popped (t2's rel(m) at line 20 consumes t1's section).
  EXPECT_GT(D.stats().MaxAbstractQueueEntries, 0u);
  EXPECT_EQ(D.report().numDistinctPairs(), 0u);
}

TEST(WcpQueueTest, EntriesPopOnlyWhenGuardHolds) {
  // Two unrelated sections on one lock: no pops, entries retained.
  TraceBuilder B;
  B.acquire("t1", "m").write("t1", "a").release("t1", "m");
  B.acquire("t2", "m").write("t2", "b").release("t2", "m");
  Trace T = testutil::takeValid(B);
  WcpDetector D(T);
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);
  // t2's release sees t1's entry but C_{acq1} ⋢ C_t2 (no conflict, no
  // edge): the entry must remain queued.
  // t1's closed section (2 entries in t2's queues) plus t2's acquire and
  // release entries (2 entries in t1's queues — t1 is a live consumer).
  EXPECT_EQ(D.stats().MaxLiveQueueEntries, 4u);
}

TEST(WcpQueueTest, ConflictEnablesPopAndRuleB) {
  // t2 reads what t1's section wrote -> rule (a) raises C_t2 -> t2's
  // release pops t1's entry (rule b) -> later conflicting pair ordered.
  TraceBuilder B;
  B.acquire("t1", "m").write("t1", "a").write("t1", "z", "z1");
  B.release("t1", "m");
  B.acquire("t2", "m").read("t2", "a").release("t2", "m");
  B.write("t2", "z", "z2");
  Trace T = testutil::takeValid(B);
  WcpDetector D(T);
  RaceReport R = runDetector(D, T).Report;
  // z1 ≤TO rel(m)_t1 ≺(b) rel(m)_t2 ≤TO z2 — wait: the z-pair is ordered
  // through rule (a) on 'a' composed with HB; either way, no race on z.
  EXPECT_FALSE(R.hasPair(RacePair(T.event(2).Loc, T.event(7).Loc)));
}

TEST(WcpStatsTest, SharedBufferNeverExceedsAbstractCount) {
  for (const PaperTrace &P : allPaperTraces()) {
    WcpDetector D(P.T);
    for (EventIdx I = 0; I != P.T.size(); ++I)
      D.processEvent(P.T.event(I), I);
    EXPECT_LE(D.stats().MaxLiveQueueEntries,
              D.stats().MaxAbstractQueueEntries)
        << P.Name;
    EXPECT_EQ(D.numEventsProcessed(), P.T.size());
  }
}

TEST(WcpStatsTest, PrivateLocksContributeNoLiveEntries) {
  // A lock only ever touched by one thread has no live consumers; its
  // entries must not count toward the live metric (they dominate the
  // literal one).
  TraceBuilder B;
  for (int I = 0; I < 10; ++I)
    B.acquire("t1", "p").write("t1", "v").release("t1", "p");
  B.write("t2", "unrelated");
  Trace T = testutil::takeValid(B);
  WcpDetector D(T);
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);
  EXPECT_EQ(D.stats().MaxLiveQueueEntries, 0u);
  EXPECT_EQ(D.stats().MaxAbstractQueueEntries, 20u)
      << "the literal metric still counts the dead queues";
}

TEST(WcpStatsTest, LateToucherInheritsPendingEntries) {
  // When a thread first acquires a lock, the other threads' pending
  // sections become live for it.
  TraceBuilder B;
  B.acquire("t1", "m").write("t1", "a").release("t1", "m");
  B.acquire("t1", "m").write("t1", "b").release("t1", "m");
  B.acquire("t2", "m"); // First touch: inherits 2 closed sections = 4,
                        // and its own acquire enters t1's queue (+1).
  Trace T = testutil::takeValid(B);
  WcpDetector D(T);
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);
  EXPECT_EQ(D.stats().MaxLiveQueueEntries, 5u);
}

TEST(WcpRaceCheckTest, FirstRaceMatchesPaperSemantics) {
  // §3.2: the detector flags the *second* event of a racing pair; our
  // per-thread history recovers the first. Check both on fig2b.
  Trace T = paperFig2b().T;
  RaceReport R = testutil::run<WcpDetector>(T);
  ASSERT_EQ(R.instances().size(), 1u);
  const RaceInstance &I = R.instances().front();
  EXPECT_EQ(I.EarlierIdx, 0u) << "w(y)";
  EXPECT_EQ(I.LaterIdx, 5u) << "r(y)";
  EXPECT_EQ(I.distance(), 5u);
}

TEST(WcpRaceCheckTest, WriteChecksBothReadAndWriteHistories) {
  TraceBuilder B;
  B.read("t1", "v", "r1");
  B.write("t2", "v", "w2"); // Races with the read.
  B.write("t3", "v", "w3"); // Races with both.
  Trace T = testutil::takeValid(B);
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_TRUE(R.hasPair(RacePair(T.event(0).Loc, T.event(1).Loc)));
  EXPECT_TRUE(R.hasPair(RacePair(T.event(0).Loc, T.event(2).Loc)));
  EXPECT_TRUE(R.hasPair(RacePair(T.event(1).Loc, T.event(2).Loc)));
  EXPECT_EQ(R.numDistinctPairs(), 3u);
}

TEST(WcpRaceCheckTest, DistinctLocationPairsDeduplicate) {
  // The same two program locations racing repeatedly count once (the
  // paper's "distinct race pairs" metric).
  TraceBuilder B;
  for (int I = 0; I < 5; ++I) {
    B.write("t1", "v", "siteA");
    B.write("t2", "v", "siteB");
  }
  RaceReport R = testutil::run<WcpDetector>(testutil::takeValid(B));
  EXPECT_EQ(R.numDistinctPairs(), 1u);
  EXPECT_GE(R.numInstances(), 5u);
}

TEST(WcpHandOverHandTest, Figure6PatternAnalyzesCleanly) {
  // acq(l0) acq(m) rel(l0) acq(l1) rel(m) rel(l1): sections overlap
  // without nesting; accesses register in all open sections.
  TraceBuilder B;
  B.acquire("t1", "l0").acquire("t1", "m").write("t1", "x");
  B.release("t1", "l0").acquire("t1", "l1").release("t1", "m");
  B.release("t1", "l1");
  B.acquire("t2", "m").read("t2", "x").release("t2", "m");
  Trace T = testutil::takeValid(B);
  // x was written inside the m-section, so rule (a) orders rel-side
  // knowledge into t2's read: no race.
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_EQ(R.numDistinctPairs(), 0u);
}

TEST(WcpHandOverHandTest, AccessOutsideOverlapStillRaces) {
  TraceBuilder B;
  B.acquire("t1", "l0").write("t1", "x").release("t1", "l0");
  B.acquire("t2", "l1").read("t2", "x").release("t2", "l1");
  Trace T = testutil::takeValid(B);
  // Different locks: rule (a) cannot apply; race.
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_EQ(R.numDistinctPairs(), 1u);
}

TEST(WcpForkJoinTest, ParentChildOrderingIsHardNotWcp) {
  // Parent's pre-fork write is ordered with the child's write (no race),
  // but this knowledge must not leak through locks: a third thread that
  // syncs with the child on a lock gains no ordering with the parent.
  TraceBuilder B;
  B.write("t1", "g", "parent");
  B.fork("t1", "t2");
  B.write("t2", "g", "child");
  B.acquire("t2", "l").release("t2", "l");
  B.acquire("t3", "l").release("t3", "l");
  B.read("t3", "g", "third");
  Trace T = testutil::takeValid(B);
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_FALSE(R.hasPair(RacePair(T.event(0).Loc, T.event(2).Loc)))
      << "fork orders parent and child";
  EXPECT_TRUE(R.hasPair(RacePair(T.event(0).Loc, T.event(7).Loc)))
      << "t3 is only HB-ordered with the parent, not WCP-ordered";
  EXPECT_TRUE(R.hasPair(RacePair(T.event(2).Loc, T.event(7).Loc)))
      << "t3 is only HB-ordered with the child too";
}

TEST(WcpWindowedTest, DetectorIsRestartablePerFragment) {
  // A fresh detector per window must not crash on fragments whose locks
  // were re-established by the splitter and must agree with the full run
  // when the window covers everything.
  Trace T = paperFig4().T;
  RaceReport Full = testutil::run<WcpDetector>(T);
  DetectorFactory Make = [](const Trace &F) {
    return std::make_unique<WcpDetector>(F);
  };
  RunResult Whole = runDetectorWindowed(Make, T, T.size());
  EXPECT_EQ(Whole.Report.numDistinctPairs(), Full.numDistinctPairs());
  RunResult Tiny = runDetectorWindowed(Make, T, 3);
  EXPECT_LE(Tiny.Report.numDistinctPairs(), Full.numDistinctPairs());
}
