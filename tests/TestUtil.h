//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef RAPID_TESTS_TESTUTIL_H
#define RAPID_TESTS_TESTUTIL_H

#include "detect/DetectorRunner.h"
#include "trace/Trace.h"
#include "vc/VectorClock.h"

#include <set>
#include <string>
#include <vector>

namespace rapid::testutil {

/// Runs detector type \p D over \p T and returns its report.
template <typename D> RaceReport run(const Trace &T) {
  D Detector(T);
  return runDetector(Detector, T).Report;
}

/// Names of variables involved in any reported race.
template <typename ReportT>
std::set<std::string> racyVars(const ReportT &Report, const Trace &T) {
  std::set<std::string> Out;
  for (const RaceInstance &I : Report.instances())
    Out.insert(T.varName(I.Var));
  return Out;
}

/// Runs a streaming detector event-by-event, capturing the post-event
/// C-timestamp of each event's thread (used by the Theorem 2 tests).
template <typename D>
std::vector<VectorClock> captureTimestamps(const Trace &T) {
  D Detector(T);
  std::vector<VectorClock> Times;
  Times.reserve(T.size());
  for (EventIdx I = 0; I != T.size(); ++I) {
    Detector.processEvent(T.event(I), I);
    Times.push_back(Detector.currentC(T.event(I).Thread));
  }
  return Times;
}

} // namespace rapid::testutil

#endif // RAPID_TESTS_TESTUTIL_H
