//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef RAPID_TESTS_TESTUTIL_H
#define RAPID_TESTS_TESTUTIL_H

#include "detect/DetectorRunner.h"
#include "trace/Trace.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"
#include "vc/VectorClock.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace rapid::testutil {

/// Finalizes \p B's trace after streaming it through the exact §2.1-axiom
/// gate session ingestion applies (StreamingTraceValidator) — a test trace
/// the validator would reject never reaches a detector in production, so
/// it should not reach one in a test either. Fails the current test on
/// violation (and still returns the trace so the failure is attributed to
/// the builder, not a crash downstream). Negative tests that deliberately
/// need ill-formed input keep calling TraceBuilder::take() directly.
inline Trace takeValid(TraceBuilder &B, bool RequireClosedSections = false) {
  Trace T = B.take();
  StreamingTraceValidator V;
  for (EventIdx I = 0; I != T.size(); ++I)
    V.feed(T.event(I), I, T);
  V.finish(T, RequireClosedSections);
  EXPECT_TRUE(V.ok()) << "test trace violates the trace axioms:\n"
                      << V.result().str();
  return T;
}

/// Bit-for-bit report equality — the determinism contract every parallel
/// mode is held to: same distinct pairs, same instance count, the same
/// witness event pairs in the same discovery order, same distances.
/// Shared by the pipeline and differential suites so "bit-identical"
/// means one thing.
inline void expectSameReport(const RaceReport &Got, const RaceReport &Want,
                             const Trace &T, const std::string &Label) {
  EXPECT_EQ(Got.numDistinctPairs(), Want.numDistinctPairs()) << Label;
  EXPECT_EQ(Got.numInstances(), Want.numInstances()) << Label;
  ASSERT_EQ(Got.instances().size(), Want.instances().size()) << Label;
  for (size_t I = 0; I != Want.instances().size(); ++I) {
    const RaceInstance &G = Got.instances()[I];
    const RaceInstance &W = Want.instances()[I];
    std::string Where = Label + " #" + std::to_string(I) + ": got " +
                        G.str(T) + ", want " + W.str(T);
    EXPECT_EQ(G.EarlierIdx, W.EarlierIdx) << Where;
    EXPECT_EQ(G.LaterIdx, W.LaterIdx) << Where;
    EXPECT_TRUE(G.EarlierLoc == W.EarlierLoc) << Where;
    EXPECT_TRUE(G.LaterLoc == W.LaterLoc) << Where;
    EXPECT_TRUE(G.Var == W.Var) << Where;
    EXPECT_EQ(Got.pairDistance(W.pair()), Want.pairDistance(W.pair()))
        << Label << " #" << I;
  }
}

/// Runs detector type \p D over \p T and returns its report.
template <typename D> RaceReport run(const Trace &T) {
  D Detector(T);
  return runDetector(Detector, T).Report;
}

/// Names of variables involved in any reported race.
template <typename ReportT>
std::set<std::string> racyVars(const ReportT &Report, const Trace &T) {
  std::set<std::string> Out;
  for (const RaceInstance &I : Report.instances())
    Out.insert(T.varName(I.Var));
  return Out;
}

/// Runs a streaming detector event-by-event, capturing the post-event
/// C-timestamp of each event's thread (used by the Theorem 2 tests).
template <typename D>
std::vector<VectorClock> captureTimestamps(const Trace &T) {
  D Detector(T);
  std::vector<VectorClock> Times;
  Times.reserve(T.size());
  for (EventIdx I = 0; I != T.size(); ++I) {
    Detector.processEvent(T.event(I), I);
    Times.emplace_back();
    Detector.currentC(T.event(I).Thread, Times.back());
  }
  return Times;
}

} // namespace rapid::testutil

#endif // RAPID_TESTS_TESTUTIL_H
