//===- tests/support_test.cpp - Support library ------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Ids.h"
#include "support/Prng.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace rapid;

TEST(IdsTest, InvalidSentinel) {
  ThreadId T;
  EXPECT_FALSE(T.isValid());
  EXPECT_TRUE(ThreadId(0).isValid());
  EXPECT_EQ(ThreadId::invalid(), ThreadId());
}

TEST(IdsTest, DistinctTypesDoNotMix) {
  // Compile-time property: ThreadId and LockId are distinct types; this
  // test documents the intent with the runtime parts.
  EXPECT_EQ(ThreadId(3).value(), 3u);
  EXPECT_LT(LockId(1), LockId(2));
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  StringInterner I;
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.intern("b"), 1u);
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.size(), 2u);
  EXPECT_EQ(I.name(1), "b");
  EXPECT_EQ(I.lookup("b"), 1u);
  EXPECT_EQ(I.lookup("zzz"), UINT32_MAX);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Prng A2(42);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(13);
    EXPECT_LT(V, 13u);
  }
  // All residues are hit eventually (sanity against a broken generator).
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(4));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(PrngTest, ChanceBoundaries) {
  Prng R(9);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0, 100));
    EXPECT_TRUE(R.chance(100, 100));
  }
}

TEST(TimerTest, FormatsLikeThePaper) {
  EXPECT_EQ(formatSeconds(0.22), "0.2s");
  EXPECT_EQ(formatSeconds(47.0), "47.0s");
  EXPECT_EQ(formatSeconds(442.0), "7m22s");
  EXPECT_EQ(formatSeconds(60.0), "1m0s");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter P({"name", "n"});
  P.addRow({"x", "1"});
  P.addRow({"longer", "22"});
  // Render to a buffer via tmpfile.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  P.print(F);
  std::rewind(F);
  char Buf[256] = {0};
  size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::string Out(Buf, Got);
  EXPECT_NE(Out.find("name    n"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TablePrinterTest, CountFormatting) {
  EXPECT_EQ(TablePrinter::formatCount(130), "130");
  EXPECT_EQ(TablePrinter::formatCount(11700), "11K");
  EXPECT_EQ(TablePrinter::formatCount(11700000), "11.7M");
  EXPECT_EQ(TablePrinter::formatCount(216000000), "216.0M");
}
