//===- tests/support_test.cpp - Support library ------------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Ids.h"
#include "support/Prng.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/TimerWheel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace rapid;

TEST(IdsTest, InvalidSentinel) {
  ThreadId T;
  EXPECT_FALSE(T.isValid());
  EXPECT_TRUE(ThreadId(0).isValid());
  EXPECT_EQ(ThreadId::invalid(), ThreadId());
}

TEST(IdsTest, DistinctTypesDoNotMix) {
  // Compile-time property: ThreadId and LockId are distinct types; this
  // test documents the intent with the runtime parts.
  EXPECT_EQ(ThreadId(3).value(), 3u);
  EXPECT_LT(LockId(1), LockId(2));
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  StringInterner I;
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.intern("b"), 1u);
  EXPECT_EQ(I.intern("a"), 0u);
  EXPECT_EQ(I.size(), 2u);
  EXPECT_EQ(I.name(1), "b");
  EXPECT_EQ(I.lookup("b"), 1u);
  EXPECT_EQ(I.lookup("zzz"), UINT32_MAX);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Prng A2(42);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(13);
    EXPECT_LT(V, 13u);
  }
  // All residues are hit eventually (sanity against a broken generator).
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(4));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(PrngTest, ChanceBoundaries) {
  Prng R(9);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0, 100));
    EXPECT_TRUE(R.chance(100, 100));
  }
}

TEST(TimerTest, FormatsLikeThePaper) {
  EXPECT_EQ(formatSeconds(0.22), "0.2s");
  EXPECT_EQ(formatSeconds(47.0), "47.0s");
  EXPECT_EQ(formatSeconds(442.0), "7m22s");
  EXPECT_EQ(formatSeconds(60.0), "1m0s");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter P({"name", "n"});
  P.addRow({"x", "1"});
  P.addRow({"longer", "22"});
  // Render to a buffer via tmpfile.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  P.print(F);
  std::rewind(F);
  char Buf[256] = {0};
  size_t Got = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::string Out(Buf, Got);
  EXPECT_NE(Out.find("name    n"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(TablePrinterTest, CountFormatting) {
  EXPECT_EQ(TablePrinter::formatCount(130), "130");
  EXPECT_EQ(TablePrinter::formatCount(11700), "11K");
  EXPECT_EQ(TablePrinter::formatCount(11700000), "11.7M");
  EXPECT_EQ(TablePrinter::formatCount(216000000), "216.0M");
}

// ---- ThreadPool stress ------------------------------------------------------
//
// The pool underpins every parallel pipeline mode, including the new
// per-variable shard tasks, so its lifecycle is pinned under contention:
// repeated construct/submit/steal/shutdown cycles must neither deadlock
// (the tests would hang their ctest timeout) nor lose or double-count a
// task.

TEST(ThreadPoolStressTest, SubmitStealShutdownCyclesUnderContention) {
  for (int Cycle = 0; Cycle != 20; ++Cycle) {
    ThreadPool Pool(4);
    std::atomic<uint64_t> Ran{0};
    // External producers race each other and the workers: submissions
    // interleave with steals while queues drain.
    std::vector<std::thread> Producers;
    for (int P = 0; P != 3; ++P)
      Producers.emplace_back([&Pool, &Ran] {
        for (int I = 0; I != 50; ++I)
          Pool.submit([&Ran] { ++Ran; });
      });
    for (std::thread &Th : Producers)
      Th.join();
    // Nested fan-out two levels deep: wait() must cover tasks submitted
    // by running tasks submitted by running tasks.
    Pool.submit([&Pool, &Ran] {
      ++Ran;
      for (int I = 0; I != 10; ++I)
        Pool.submit([&Pool, &Ran] {
          ++Ran;
          Pool.submit([&Ran] { ++Ran; });
        });
    });
    Pool.wait();
    EXPECT_EQ(Ran.load(), 150u + 21u) << "cycle " << Cycle;
    EXPECT_EQ(Pool.tasksExecuted(), 150u + 21u) << "cycle " << Cycle;
    EXPECT_LE(Pool.tasksStolen(), Pool.tasksExecuted());
    EXPECT_EQ(Pool.tasksFailed(), 0u);
  }
}

TEST(ThreadPoolStressTest, DestructorDrainsWithoutExplicitWait) {
  // Shutdown with work still queued: the destructor must run every task,
  // not drop the queue.
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 200; ++I)
      Pool.submit([&Ran] { ++Ran; });
  }
  EXPECT_EQ(Ran.load(), 200);
}

TEST(ThreadPoolStressTest, ConcurrentWaitersAllReleaseTogether) {
  // Several threads blocked in wait() while tasks (and nested tasks) are
  // still landing: every waiter must wake exactly when Pending hits zero.
  ThreadPool Pool(3);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Ran] { ++Ran; });
  std::atomic<int> Released{0};
  std::vector<std::thread> Waiters;
  for (int W = 0; W != 4; ++W)
    Waiters.emplace_back([&Pool, &Released, &Ran] {
      Pool.wait();
      EXPECT_EQ(Ran.load(), 100);
      ++Released;
    });
  for (std::thread &Th : Waiters)
    Th.join();
  EXPECT_EQ(Released.load(), 4);
  EXPECT_EQ(Pool.tasksExecuted(), 100u);
}

TEST(ThreadPoolStressTest, ThrowingTasksAreContainedAndCounted) {
  // A task that lets an exception escape must neither kill the process
  // nor strand wait(); the failure counter records it and later batches
  // still run.
  ThreadPool Pool(2);
  for (int I = 0; I != 10; ++I)
    Pool.submit([] { throw std::runtime_error("task exploded"); });
  Pool.wait();
  EXPECT_EQ(Pool.tasksFailed(), 10u);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 10);
  EXPECT_EQ(Pool.tasksExecuted(), 20u);
}

// ---- TimerWheel -------------------------------------------------------------

TEST(TimerWheelTest, FiresAtTheRoundedDeadlineNeverEarly) {
  TimerWheel W(/*TickMs=*/10, /*Slots=*/8);
  int Fired = 0;
  W.schedule(25, [&] { ++Fired; }); // rounds up to 3 ticks = 30 ms
  W.advance(20);
  EXPECT_EQ(Fired, 0) << "fired before the rounded-up deadline";
  W.advance(10);
  EXPECT_EQ(Fired, 1);
  W.advance(1000);
  EXPECT_EQ(Fired, 1) << "one-shot timer fired again";
  EXPECT_EQ(W.pending(), 0u);
}

TEST(TimerWheelTest, ZeroDelayFiresOnTheNextTickNotAFullRotation) {
  TimerWheel W(/*TickMs=*/10, /*Slots=*/4);
  int Fired = 0;
  W.schedule(0, [&] { ++Fired; });
  // The bug this pins: slot Cursor+0 was already drained, so a naive
  // placement would wait Slots*TickMs = 40 ms instead of one tick.
  W.advance(10);
  EXPECT_EQ(Fired, 1);
}

TEST(TimerWheelTest, BeyondHorizonDelaysUseRounds) {
  TimerWheel W(/*TickMs=*/10, /*Slots=*/4); // horizon = 40 ms
  int Fired = 0;
  W.schedule(100, [&] { ++Fired; });
  W.advance(90);
  EXPECT_EQ(Fired, 0);
  W.advance(10);
  EXPECT_EQ(Fired, 1);
}

TEST(TimerWheelTest, FractionalTicksAccumulateAcrossIrregularAdvances) {
  TimerWheel W(/*TickMs=*/10, /*Slots=*/16);
  int Fired = 0;
  W.schedule(30, [&] { ++Fired; });
  // 10 x 3 ms = 30 ms of wall time in sub-tick steps: the carry must
  // add up to the same three ticks a single advance(30) would take.
  for (int I = 0; I != 10; ++I)
    W.advance(3);
  EXPECT_EQ(Fired, 1);
}

TEST(TimerWheelTest, CancelDropsPendingAndToleratesFired) {
  TimerWheel W(/*TickMs=*/10, /*Slots=*/8);
  int Fired = 0;
  TimerWheel::TimerId A = W.schedule(20, [&] { ++Fired; });
  TimerWheel::TimerId B = W.schedule(20, [&] { ++Fired; });
  EXPECT_TRUE(W.cancel(A));
  EXPECT_FALSE(W.cancel(A)) << "double cancel must report already-gone";
  W.advance(40);
  EXPECT_EQ(Fired, 1);
  EXPECT_FALSE(W.cancel(B)) << "cancelling a fired timer must be benign";
  EXPECT_EQ(W.pending(), 0u);
}

TEST(TimerWheelTest, CallbacksMayRescheduleIntoTheDrainingSlot) {
  // The self-rescheduling housekeeping pattern: each firing schedules the
  // next. A naive wheel that fires while walking the slot would either
  // skip or re-fire the fresh entry.
  TimerWheel W(/*TickMs=*/10, /*Slots=*/4);
  int Fired = 0;
  std::function<void()> Tick = [&] {
    if (++Fired < 3)
      W.schedule(40, Tick); // lands exactly one rotation out: same slot
  };
  W.schedule(40, Tick);
  for (int I = 0; I != 12; ++I)
    W.advance(10);
  EXPECT_EQ(Fired, 3);
  EXPECT_EQ(W.pending(), 0u);
}
