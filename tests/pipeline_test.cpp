//===- tests/pipeline_test.cpp - Pipeline, chunked reader, thread pool --------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The pipeline's contract is *determinism*: parallel multi-detector runs
// must be bit-for-bit identical (same race pairs, same witness indices, in
// the same order) to the sequential single-detector runs they fan out —
// across thread counts, shard sizes and scheduling. These tests pin that
// contract on the paper figures and on randomized traces, and cover the
// streaming chunked reader against the one-shot loader byte for byte.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "io/BinaryFormat.h"
#include "io/TraceFile.h"
#include "lockset/EraserDetector.h"
#include "pipeline/ChunkedReader.h"
#include "pipeline/Pipeline.h"
#include "support/ThreadPool.h"
#include "trace/Window.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <cstdio>

using namespace rapid;

namespace {

// The standard four-lane fan-out: every streaming detector in the repo.
struct NamedFactory {
  const char *Name;
  DetectorFactory Make;
};

std::vector<NamedFactory> allLanes() {
  return {
      {"HB", [](const Trace &T) { return std::make_unique<HbDetector>(T); }},
      {"WCP", [](const Trace &T) { return std::make_unique<WcpDetector>(T); }},
      {"FastTrack",
       [](const Trace &T) { return std::make_unique<FastTrackDetector>(T); }},
      {"Eraser",
       [](const Trace &T) { return std::make_unique<EraserDetector>(T); }},
  };
}

AnalysisPipeline makePipeline(const PipelineOptions &Opts) {
  AnalysisPipeline P(Opts);
  for (NamedFactory &F : allLanes())
    P.addDetector(F.Make, F.Name);
  return P;
}

using testutil::expectSameReport;

void expectPipelineMatchesSequential(const Trace &T, const PipelineOptions &Opts,
                                     const std::string &Label) {
  PipelineResult R = makePipeline(Opts).run(T);
  std::vector<NamedFactory> Lanes = allLanes();
  ASSERT_EQ(R.Lanes.size(), Lanes.size());
  for (size_t L = 0; L != Lanes.size(); ++L) {
    std::unique_ptr<Detector> D = Lanes[L].Make(T);
    RunResult Want = runDetector(*D, T);
    expectSameReport(R.Lanes[L].Report, Want.Report, T,
                     Label + "/" + Lanes[L].Name);
  }
}

void expectSameTrace(const Trace &A, const Trace &B) {
  ASSERT_EQ(A.size(), B.size());
  ASSERT_EQ(A.numThreads(), B.numThreads());
  ASSERT_EQ(A.numLocks(), B.numLocks());
  ASSERT_EQ(A.numVars(), B.numVars());
  ASSERT_EQ(A.numLocs(), B.numLocs());
  for (EventIdx I = 0; I != A.size(); ++I) {
    const Event &X = A.event(I);
    const Event &Y = B.event(I);
    ASSERT_EQ(static_cast<int>(X.Kind), static_cast<int>(Y.Kind)) << I;
    ASSERT_TRUE(X.Thread == Y.Thread) << I;
    ASSERT_EQ(X.Target, Y.Target) << I;
    ASSERT_TRUE(X.Loc == Y.Loc) << I;
  }
  for (uint32_t I = 0; I != A.numThreads(); ++I)
    ASSERT_EQ(A.threadName(ThreadId(I)), B.threadName(ThreadId(I)));
  for (uint32_t I = 0; I != A.numLocs(); ++I)
    ASSERT_EQ(A.locName(LocId(I)), B.locName(LocId(I)));
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "rapidpp_" + Name;
}

Trace mediumRandomTrace(uint64_t Seed) {
  RandomTraceParams Params;
  Params.Seed = Seed;
  Params.NumThreads = 2 + Seed % 4;
  Params.NumLocks = 2 + Seed % 3;
  Params.OpsPerThread = 60;
  Params.WithForkJoin = Seed % 2 == 0;
  return randomTrace(Params);
}

} // namespace

// ---- Parallel multi-detector fan-out ----------------------------------------

TEST(PipelineTest, UnshardedParallelMatchesSequentialOnPaperTraces) {
  PipelineOptions Opts;
  Opts.NumThreads = 4;
  for (const PaperTrace &P : allPaperTraces())
    expectPipelineMatchesSequential(P.T, Opts, P.Name);
}

class PipelineRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineRandomTest, UnshardedParallelMatchesSequential) {
  PipelineOptions Opts;
  Opts.NumThreads = 4;
  Trace T = mediumRandomTrace(GetParam());
  expectPipelineMatchesSequential(
      T, Opts, "random seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Random, PipelineRandomTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(PipelineTest, FusedSingleWalkMatchesSequential) {
  PipelineOptions Opts;
  Opts.Parallel = false;
  expectPipelineMatchesSequential(makeWorkload(workloadSpec("pingpong")), Opts,
                                  "fused/pingpong");
  expectPipelineMatchesSequential(mediumRandomTrace(99), Opts, "fused/random");
}

TEST(PipelineTest, ThreadCountDoesNotChangeResults) {
  Trace T = makeWorkload(workloadSpec("account"));
  PipelineOptions One;
  One.NumThreads = 1;
  PipelineResult RefRun = makePipeline(One).run(T);
  for (unsigned N : {2u, 4u, 8u}) {
    PipelineOptions Opts;
    Opts.NumThreads = N;
    PipelineResult R = makePipeline(Opts).run(T);
    ASSERT_EQ(R.Lanes.size(), RefRun.Lanes.size());
    for (size_t L = 0; L != R.Lanes.size(); ++L)
      expectSameReport(R.Lanes[L].Report, RefRun.Lanes[L].Report, T,
                       "threads=" + std::to_string(N));
  }
}

TEST(PipelineTest, VarShardedLanesMatchSequentialForAnyShardAndThreadCount) {
  // The per-variable sharded lane mode (Opts.VarShards) must be invisible
  // in the results: capture-capable lanes (HB, WCP, and FastTrack via its
  // epoch replayer) go through the clock pass + shard check + merge
  // machinery, the rest (Eraser) fall back to a sequential walk, and every
  // lane's report stays bit-identical to runDetector for any shard or
  // thread count.
  for (uint64_t Seed : {4u, 9u}) {
    Trace T = mediumRandomTrace(Seed);
    for (uint32_t Shards : {1u, 3u, 8u}) {
      for (unsigned Threads : {1u, 4u}) {
        PipelineOptions Opts;
        Opts.NumThreads = Threads;
        Opts.VarShards = Shards;
        PipelineResult R = makePipeline(Opts).run(T);
        EXPECT_EQ(R.VarShards, Shards);
        std::vector<NamedFactory> Lanes = allLanes();
        ASSERT_EQ(R.Lanes.size(), Lanes.size());
        for (size_t L = 0; L != Lanes.size(); ++L) {
          EXPECT_TRUE(R.Lanes[L].Error.empty()) << R.Lanes[L].Error;
          std::unique_ptr<Detector> D = Lanes[L].Make(T);
          RunResult Want = runDetector(*D, T);
          expectSameReport(R.Lanes[L].Report, Want.Report, T,
                           "varshards=" + std::to_string(Shards) +
                               " threads=" + std::to_string(Threads) + "/" +
                               Lanes[L].Name);
        }
      }
    }
  }
}

// ---- Sharded (windowed) mode ------------------------------------------------

TEST(PipelineTest, ShardedParallelMatchesWindowedReference) {
  // Reference: the classic sequential windowed loop — fresh detector per
  // window, indices translated to the parent trace, merged in window
  // order. The sharded parallel pipeline must reproduce it exactly.
  Trace T = makeWorkload(workloadSpec("bufwriter"), 0.05);
  for (uint64_t W : {64u, 500u, 4096u}) {
    for (NamedFactory &F : allLanes()) {
      RaceReport Want;
      for (TraceWindow &Win : splitIntoWindows(T, W)) {
        std::unique_ptr<Detector> D = F.Make(Win.Fragment);
        for (EventIdx I = 0; I != Win.Fragment.size(); ++I)
          D->processEvent(Win.Fragment.event(I), I);
        D->finish();
        RaceReport Translated;
        for (RaceInstance Inst : D->report().instances()) {
          Inst.EarlierIdx = Win.Original[Inst.EarlierIdx];
          Inst.LaterIdx = Win.Original[Inst.LaterIdx];
          Translated.addRace(Inst);
        }
        Want.mergeFrom(Translated);
      }

      PipelineOptions Opts;
      Opts.NumThreads = 4;
      Opts.ShardEvents = W;
      AnalysisPipeline P(Opts);
      P.addDetector(F.Make);
      PipelineResult R = P.run(T);
      ASSERT_EQ(R.Lanes.size(), 1u);
      EXPECT_EQ(R.Lanes[0].DetectorName,
                std::string(F.Name) + "[w=" + std::to_string(W) + "]");
      expectSameReport(R.Lanes[0].Report, Want, T,
                       std::string(F.Name) + " w=" + std::to_string(W));
    }
  }
}

TEST(PipelineTest, WindowedRunnerAdapterKeepsItsContract) {
  // runDetectorWindowed is now an adapter over the pipeline; it must still
  // agree with the unwindowed run when one window spans the whole trace.
  Trace T = makeWorkload(workloadSpec("mergesort"));
  RaceReport Full = testutil::run<HbDetector>(T);
  DetectorFactory Make = [](const Trace &F) {
    return std::make_unique<HbDetector>(F);
  };
  RunResult Whole = runDetectorWindowed(Make, T, T.size());
  EXPECT_EQ(Whole.DetectorName, "HB[w=" + std::to_string(T.size()) + "]");
  expectSameReport(Whole.Report, Full, T, "whole-window");
}

// ---- Streaming ingestion ----------------------------------------------------

TEST(ChunkedReaderTest, TextMatchesWholeFileLoad) {
  Trace T = mediumRandomTrace(7);
  std::string Path = tempPath("chunk.txt");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  TraceLoadResult Whole = loadTraceFile(Path);
  ASSERT_TRUE(Whole.Ok) << Whole.Error;
  // Deliberately hostile chunk sizes: 7-byte reads split every line.
  ChunkedReaderOptions Opts;
  Opts.ChunkBytes = 7;
  Opts.MaxEventsPerChunk = 3;
  TraceLoadResult Chunked = loadTraceFileChunked(Path, Opts);
  ASSERT_TRUE(Chunked.Ok) << Chunked.Error;
  expectSameTrace(Chunked.T, Whole.T);
  std::remove(Path.c_str());
}

TEST(ChunkedReaderTest, BinaryMatchesWholeFileLoadCaseInsensitive) {
  Trace T = mediumRandomTrace(11);
  // Upper-case extension must still select the binary codec (both when
  // saving and when loading), per the case-insensitive dispatch fix.
  std::string Path = tempPath("chunk.BIN");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  TraceLoadResult Whole = loadTraceFile(Path);
  ASSERT_TRUE(Whole.Ok) << Whole.Error;
  ChunkedReaderOptions Opts;
  Opts.ChunkBytes = 5; // Smaller than one 13-byte event record.
  Opts.MaxEventsPerChunk = 4;
  TraceLoadResult Chunked = loadTraceFileChunked(Path, Opts);
  ASSERT_TRUE(Chunked.Ok) << Chunked.Error;
  expectSameTrace(Chunked.T, Whole.T);
  std::remove(Path.c_str());
}

TEST(ChunkedReaderTest, DeliversBoundedBatches) {
  Trace T = mediumRandomTrace(3);
  std::string Path = tempPath("batches.bin");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  ChunkedReaderOptions Opts;
  Opts.MaxEventsPerChunk = 10;
  ChunkedTraceReader Reader(Path, Opts);
  uint64_t Calls = 0;
  while (!Reader.done()) {
    uint64_t Got = Reader.nextChunk();
    EXPECT_LE(Got, 10u);
    Calls += Got > 0;
  }
  ASSERT_TRUE(Reader.ok()) << Reader.error();
  EXPECT_EQ(Reader.eventsDelivered(), T.size());
  EXPECT_GE(Calls, T.size() / 10);
  expectSameTrace(Reader.take(), T);
  std::remove(Path.c_str());
}

TEST(ChunkedReaderTest, MissingFileSurfacesErrnoText) {
  TraceLoadResult R = loadTraceFileChunked("/nonexistent/dir/trace.txt");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("No such file"), std::string::npos) << R.Error;
  // The one-shot loader reports the same way.
  TraceLoadResult R2 = loadTraceFile("/nonexistent/dir/trace.txt");
  EXPECT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.find("No such file"), std::string::npos) << R2.Error;
}

TEST(ChunkedReaderTest, CorruptHugeEventCountFailsGracefully) {
  // A crafted header declaring ~2^64 events must produce a parse error,
  // not an allocation throw — in both the one-shot and chunked loaders.
  Trace T = mediumRandomTrace(1);
  std::string Bytes = writeBinaryTrace(T);
  // The u64 count sits right before the first 13-byte event record.
  size_t CountPos = Bytes.size() - T.size() * 13 - 8;
  for (size_t I = 0; I != 8; ++I)
    Bytes[CountPos + I] = static_cast<char>(0xFF);
  BinaryParseResult R = parseBinaryTrace(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("truncated"), std::string::npos) << R.Error;

  std::string Path = tempPath("huge.bin");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
  TraceLoadResult Chunked = loadTraceFileChunked(Path);
  EXPECT_FALSE(Chunked.Ok);
  EXPECT_NE(Chunked.Error.find("truncated"), std::string::npos)
      << Chunked.Error;
  std::remove(Path.c_str());
}

TEST(ChunkedReaderTest, MalformedLineReportsLineNumber) {
  std::string Path = tempPath("bad.txt");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("T0|w(x)|L1\n# comment\nT1|frobnicate(x)|L2\n", F);
  std::fclose(F);
  TraceLoadResult R = loadTraceFileChunked(Path, {16, 2});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("line 3"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos) << R.Error;
  std::remove(Path.c_str());
}

TEST(PipelineTest, RunFileMatchesInMemoryRun) {
  Trace T = mediumRandomTrace(5);
  std::string Path = tempPath("runfile.bin");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  PipelineOptions Opts;
  Opts.NumThreads = 2;
  AnalysisPipeline P = makePipeline(Opts);
  std::string Error;
  Trace Loaded;
  PipelineResult FromFile = P.runFile(Path, Error, &Loaded);
  ASSERT_TRUE(Error.empty()) << Error;
  expectSameTrace(Loaded, T);
  PipelineResult InMemory = P.run(T);
  ASSERT_EQ(FromFile.Lanes.size(), InMemory.Lanes.size());
  for (size_t L = 0; L != FromFile.Lanes.size(); ++L)
    expectSameReport(FromFile.Lanes[L].Report, InMemory.Lanes[L].Report, T,
                     "runFile lane " + std::to_string(L));
  std::remove(Path.c_str());

  PipelineResult Missing = P.runFile("/nonexistent/x.bin", Error);
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(Missing.Lanes.empty());
}

TEST(PipelineTest, ThrowingLaneFailsAloneWithoutSinkingTheRun) {
  // One detector factory throws; its lane reports the error while every
  // other lane completes normally and the process survives.
  Trace T = makeWorkload(workloadSpec("pingpong"));
  PipelineOptions Opts;
  Opts.NumThreads = 2;
  AnalysisPipeline P(Opts);
  P.addDetector(
      [](const Trace &F) { return std::make_unique<HbDetector>(F); }, "HB");
  P.addDetector(
      [](const Trace &) -> std::unique_ptr<Detector> {
        throw std::runtime_error("detector exploded");
      },
      "Boom");
  PipelineResult R = P.run(T);
  ASSERT_EQ(R.Lanes.size(), 2u);
  EXPECT_TRUE(R.Lanes[0].Error.empty()) << R.Lanes[0].Error;
  EXPECT_GT(R.Lanes[0].Report.numDistinctPairs(), 0u);
  EXPECT_NE(R.Lanes[1].Error.find("detector exploded"), std::string::npos)
      << R.Lanes[1].Error;
  EXPECT_EQ(R.Lanes[1].Report.numDistinctPairs(), 0u);
}

TEST(ChunkedReaderTest, EmptyBinFileMatchesOneShotLoaderError) {
  std::string Path = tempPath("empty.bin");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fclose(F);
  TraceLoadResult Whole = loadTraceFile(Path);
  TraceLoadResult Chunked = loadTraceFileChunked(Path);
  EXPECT_FALSE(Whole.Ok);
  EXPECT_FALSE(Chunked.Ok);
  EXPECT_EQ(Whole.Error, Chunked.Error);
  EXPECT_NE(Chunked.Error.find("bad magic"), std::string::npos)
      << Chunked.Error;
  std::remove(Path.c_str());
}

// ---- Thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEveryTaskIncludingNestedSubmits) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  // Tasks may fan out further tasks; wait() must cover those too.
  Pool.submit([&Pool, &Count] {
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { ++Count; });
  });
  Pool.wait();
  EXPECT_EQ(Count.load(), 150);
  EXPECT_EQ(Pool.tasksExecuted(), 151u);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Batch = 0; Batch != 3; ++Batch) {
    for (int I = 0; I != 20; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Batch + 1) * 20);
  }
  EXPECT_LE(Pool.tasksStolen(), Pool.tasksExecuted());
}

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
  ThreadPool Pool; // Default-sized pool constructs and drains cleanly.
  Pool.submit([] {});
  Pool.wait();
}
