//===- tests/lowerbound_test.cpp - Theorem 4/5 trace families -----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/LowerBoundTraces.h"
#include "reference/ClosureEngine.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

std::vector<bool> bits(std::initializer_list<int> Bs) {
  std::vector<bool> Out;
  for (int B : Bs)
    Out.push_back(B != 0);
  return Out;
}

/// True iff the z-probe pair is WCP-ordered in the equality trace.
bool probesOrdered(const Trace &T) {
  ClosureEngine Ref(T);
  EventIdx Z1 = UINT64_MAX, Z2 = UINT64_MAX;
  for (EventIdx I = 0; I != T.size(); ++I) {
    if (T.locName(T.event(I).Loc) == "z1")
      Z1 = I;
    if (T.locName(T.event(I).Loc) == "z2")
      Z2 = I;
  }
  return Ref.ordered(OrderKind::WCP, Z1, Z2);
}

} // namespace

TEST(EqualityTraceTest, OrderedIffSomePositionMatches) {
  // Exhaustive over all 3-bit pairs: the probes are WCP-ordered iff
  // ∃i: U[i] == V[i]; equivalently the z pair races iff V = ¬U.
  for (int U = 0; U < 8; ++U) {
    for (int V = 0; V < 8; ++V) {
      std::vector<bool> UB = bits({U & 1, (U >> 1) & 1, (U >> 2) & 1});
      std::vector<bool> VB = bits({V & 1, (V >> 1) & 1, (V >> 2) & 1});
      Trace T = equalityTrace(UB, VB);
      ASSERT_TRUE(validateTrace(T).ok());
      // ∃i: U[i] == V[i] ⟺ U XOR V is not all-ones.
      bool Match = ((U ^ V) & 7) != 7;
      EXPECT_EQ(probesOrdered(T), Match) << "U=" << U << " V=" << V;
      // Cross-check with the streaming detector's race verdict.
      RaceReport R = testutil::run<WcpDetector>(T);
      bool ZRace = R.hasPair(RacePair(T.event(0).Loc,
                                      T.event(T.size() - 1).Loc));
      EXPECT_EQ(ZRace, !Match);
    }
  }
}

TEST(EqualityTraceTest, ScalesToLongStrings) {
  std::vector<bool> U(64), V(64);
  for (size_t I = 0; I < 64; ++I) {
    U[I] = I % 3 == 0;
    V[I] = !U[I]; // Complement: every position differs -> race.
  }
  Trace T = equalityTrace(U, V);
  RaceReport R = testutil::run<WcpDetector>(T);
  EXPECT_TRUE(R.hasPair(RacePair(T.event(0).Loc, T.event(T.size() - 1).Loc)));
  // Flip one position: now ordered, no race on z.
  V[10] = U[10];
  Trace T2 = equalityTrace(U, V);
  RaceReport R2 = testutil::run<WcpDetector>(T2);
  EXPECT_FALSE(
      R2.hasPair(RacePair(T2.event(0).Loc, T2.event(T2.size() - 1).Loc)));
}

TEST(QueuePressureTest, QueuesGrowLinearlyWithoutConflicts) {
  // §3.4: the queues can retain Θ(n) entries. Without conflicts no entry
  // is ever popped; with conflicts the while-loop drains them.
  for (uint32_t N : {16u, 64u, 256u}) {
    Trace NoConf = queuePressureTrace(N, /*WithConflicts=*/false);
    Trace Conf = queuePressureTrace(N, /*WithConflicts=*/true);
    ASSERT_TRUE(validateTrace(NoConf).ok());
    ASSERT_TRUE(validateTrace(Conf).ok());

    WcpDetector DN(NoConf);
    for (EventIdx I = 0; I != NoConf.size(); ++I)
      DN.processEvent(NoConf.event(I), I);
    WcpDetector DC(Conf);
    for (EventIdx I = 0; I != Conf.size(); ++I)
      DC.processEvent(Conf.event(I), I);

    // Unpopped: both queues of both threads hold ~N entries each.
    EXPECT_GE(DN.stats().MaxAbstractQueueEntries, 2u * N)
        << "n=" << N;
    // Popped: bounded by a small constant regardless of N.
    EXPECT_LE(DC.stats().MaxAbstractQueueEntries, 16u) << "n=" << N;
    EXPECT_LT(DC.stats().MaxAbstractQueueEntries,
              DN.stats().MaxAbstractQueueEntries / 4);
  }
}

TEST(QueuePressureTest, SharedBufferIsGarbageCollected) {
  // The deduplicated shared buffer drains when every cursor passes.
  Trace Conf = queuePressureTrace(128, /*WithConflicts=*/true);
  WcpDetector D(Conf);
  for (EventIdx I = 0; I != Conf.size(); ++I)
    D.processEvent(Conf.event(I), I);
  EXPECT_LE(D.stats().MaxSharedQueueEntries, 8u);
}
