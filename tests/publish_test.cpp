//===- tests/publish_test.cpp - Watermark publication: store + sessions -------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The lock-free publish path has two layers, both pinned here:
//
//   1. PublishedStore — the single-writer multi-reader chunked store the
//      session streams through: directory math across chunk boundaries,
//      watermark gating, stable element addresses, concurrent readers
//      over the published prefix, and the stop handshake of
//      waitPublished();
//   2. the session seqlock path end to end — a producer thread feeding
//      randomized batch sizes races reader threads hammering
//      partialResult()/exportTimeline() while every lane reads the
//      prefix in place (run under TSan via RAPID_SANITIZE=thread), and
//      a 100-seed fuzz pins the in-place lane walk bit-for-bit against
//      the batch engine.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "api/AnalysisSession.h"
#include "gen/RandomTraceGen.h"
#include "support/PublishedStore.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

using namespace rapid;
using testutil::expectSameReport;

namespace {

constexpr DetectorKind kAllKinds[] = {DetectorKind::Hb, DetectorKind::Wcp,
                                      DetectorKind::FastTrack,
                                      DetectorKind::Eraser};

AnalysisConfig allDetectorConfig(RunMode Mode) {
  AnalysisConfig Cfg;
  Cfg.Mode = Mode;
  for (DetectorKind K : kAllKinds)
    Cfg.addDetector(K);
  return Cfg;
}

RandomTraceParams fuzzParams(uint64_t Seed, bool ForkJoin) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 5;
  P.NumLocks = 1 + Seed % 4;
  P.NumVars = 1 + (Seed * 3) % 9;
  P.OpsPerThread = 25 + (Seed * 11) % 50;
  P.MaxLockNesting = 1 + Seed % 3;
  P.AcquirePercent = 10 + (Seed * 5) % 25;
  P.WritePercent = 30 + (Seed * 13) % 40;
  P.WithForkJoin = ForkJoin;
  return P;
}

class PublishFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

// ---- PublishedStore: directory math and watermark gating --------------------

// Enough elements to span four chunks (4096 + 8192 + 16384 + part of
// 32768): operator[] and forRange must address every element correctly
// across every chunk seam, and addresses must never move on growth.
TEST(PublishedStoreTest, ChunkMathSurvivesBoundaries) {
  PublishedStore<uint64_t> S;
  constexpr uint64_t N = 40000;
  const uint64_t *FirstElem = nullptr;
  for (uint64_t I = 0; I != N; ++I) {
    S.append(I * 3 + 1);
    if (I == 0)
      FirstElem = &S[0];
  }
  S.publish(N);
  EXPECT_EQ(S.size(), N);
  EXPECT_EQ(S.published(), N);
  // Stability: growing into later chunks never relocated chunk 0.
  EXPECT_EQ(FirstElem, &S[0]);
  // Spot-check each chunk seam; then a full sweep via forRange.
  for (uint64_t I : {uint64_t{0}, uint64_t{4095}, uint64_t{4096},
                     uint64_t{12287}, uint64_t{12288}, uint64_t{28671},
                     uint64_t{28672}, N - 1})
    EXPECT_EQ(S[I], I * 3 + 1) << "index " << I;
  uint64_t Seen = 0;
  S.forRange(0, N, [&](const uint64_t &V, uint64_t I) {
    ASSERT_EQ(V, I * 3 + 1);
    ASSERT_EQ(I, Seen);
    ++Seen;
  });
  EXPECT_EQ(Seen, N);
}

// The watermark gates visibility: size() runs ahead of published(), and a
// partial forRange sees exactly the published prefix.
TEST(PublishedStoreTest, WatermarkGatesVisibility) {
  PublishedStore<int> S;
  for (int I = 0; I != 100; ++I)
    S.append(I);
  EXPECT_EQ(S.size(), 100u);
  EXPECT_EQ(S.published(), 0u);
  S.publish(60);
  EXPECT_EQ(S.published(), 60u);
  int Sum = 0;
  S.forRange(0, S.published(), [&](int V, uint64_t) { Sum += V; });
  EXPECT_EQ(Sum, 59 * 60 / 2);
  S.publish(100);
  EXPECT_EQ(S.published(), 100u);
}

// waitPublished returns Current (and only then) when the stop predicate
// fires with nothing new; with news published it returns the watermark
// even when the stop flag is already up.
TEST(PublishedStoreTest, WaitPublishedStopHandshake) {
  PublishedStore<int> S;
  std::atomic<bool> Stop{true};
  auto Stopped = [&] { return Stop.load(std::memory_order_seq_cst); };
  EXPECT_EQ(S.waitPublished(0, Counter(), Stopped), 0u);
  S.append(7);
  S.publish(1);
  EXPECT_EQ(S.waitPublished(0, Counter(), Stopped), 1u);
  EXPECT_EQ(S.waitPublished(1, Counter(), Stopped), 1u);
  // A parked reader must be woken by a publish from another thread.
  Stop.store(false, std::memory_order_seq_cst);
  std::thread Writer([&] {
    S.append(8);
    S.publish(2);
  });
  EXPECT_EQ(S.waitPublished(1, Counter(), Stopped), 2u);
  Writer.join();
}

// One writer, several readers: every reader walks the full stream in
// place through waitPublished/forRange and must observe exactly the
// values the writer appended — the core seqlock-prefix guarantee the
// session consumers are built on. Run under TSan via RAPID_SANITIZE.
TEST(PublishedStoreTest, ConcurrentReadersSeeExactPrefix) {
  PublishedStore<uint64_t> S;
  constexpr uint64_t N = 30000;
  std::atomic<bool> Done{false};
  auto Stopped = [&] { return Done.load(std::memory_order_seq_cst); };

  std::vector<std::thread> Readers;
  std::atomic<uint32_t> Failures{0};
  for (int R = 0; R != 4; ++R) {
    Readers.emplace_back([&] {
      uint64_t Consumed = 0;
      for (;;) {
        const uint64_t To = S.waitPublished(Consumed, Counter(), Stopped);
        if (To == Consumed)
          break; // Stopped and fully drained.
        S.forRange(Consumed, To, [&](const uint64_t &V, uint64_t I) {
          if (V != (I ^ 0x5a5a))
            Failures.fetch_add(1, std::memory_order_relaxed);
        });
        Consumed = To;
      }
      if (Consumed != N)
        Failures.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::mt19937_64 Rng(42);
  uint64_t Appended = 0;
  while (Appended != N) {
    const uint64_t Step = std::min<uint64_t>(N - Appended, 1 + Rng() % 977);
    for (uint64_t I = 0; I != Step; ++I, ++Appended)
      S.append(Appended ^ 0x5a5a);
    S.publish(Appended);
  }
  Done.store(true, std::memory_order_seq_cst);
  S.wakeAll();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
}

// ---- Session seqlock path under fire ----------------------------------------

// The tentpole stress: a producer thread pushes randomized batch sizes
// through a fused session (every lane reads the published prefix in
// place) while the main thread hammers partialResult() and
// exportTimeline(). Every snapshot must be internally consistent —
// EventsIngested monotone, every lane within the watermark, every race
// index below the lane's consumed frontier — and the final report must
// match the batch engine bit for bit. TSan (RAPID_SANITIZE=thread)
// exercises the watermark/eventcount orderings directly here.
TEST_P(PublishFuzzTest, HammeredSessionStaysConsistentAndExact) {
  const uint64_t Seed = GetParam();
  Trace T = randomTrace(fuzzParams(Seed ^ 0xbeef, Seed % 2 == 0));
  ASSERT_TRUE(validateTrace(T).ok());

  AnalysisConfig Cfg = allDetectorConfig(Seed % 2 ? RunMode::Fused
                                                  : RunMode::Sequential);
  Cfg.StreamBatchEvents = 1 + Seed % 23; // Randomized consumer drain size.
  Cfg.Timeline = true;
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.declareTablesFrom(T).ok());

  // Producer: the session's one feeding thread, randomized push sizes.
  std::atomic<bool> Feeding{true};
  std::thread Producer([&] {
    std::mt19937_64 Rng(Seed * 2654435761u + 1);
    std::vector<Event> Batch;
    for (EventIdx I = 0; I != T.size(); ++I) {
      Batch.push_back(T.event(I));
      if (Batch.size() == 1 + Rng() % 37 || I + 1 == T.size()) {
        ASSERT_TRUE(S.feed(Batch).ok());
        Batch.clear();
      }
    }
    Feeding.store(false, std::memory_order_seq_cst);
  });

  uint64_t LastIngested = 0;
  while (Feeding.load(std::memory_order_seq_cst)) {
    AnalysisResult Mid = S.partialResult();
    ASSERT_TRUE(Mid.Partial);
    EXPECT_GE(Mid.EventsIngested, LastIngested) << "watermark regressed";
    LastIngested = Mid.EventsIngested;
    ASSERT_EQ(Mid.Lanes.size(), std::size(kAllKinds));
    for (const LaneReport &L : Mid.Lanes) {
      EXPECT_LE(L.EventsConsumed, Mid.EventsIngested)
          << "lane ahead of the published watermark";
      for (const RaceInstance &R : L.Report.instances())
        EXPECT_LT(R.LaterIdx, L.EventsConsumed)
            << "race index beyond the lane's consumed frontier";
    }
    (void)S.exportTimeline(); // Races the recorder; must stay well-formed.
  }
  Producer.join();

  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
  EXPECT_EQ(R.EventsIngested, T.size());
  for (size_t L = 0; L != R.Lanes.size(); ++L) {
    std::unique_ptr<Detector> D = makeDetectorFactory(kAllKinds[L])(T);
    RunResult Want = runDetector(*D, T);
    EXPECT_EQ(R.Lanes[L].EventsConsumed, T.size());
    expectSameReport(R.Lanes[L].Report, Want.Report, T,
                     "hammered seed " + std::to_string(Seed) + "/" +
                         Want.DetectorName);
  }
  EXPECT_FALSE(S.exportTimeline().empty());
}

// In-place lane reads vs the batch engine, bit for bit: 50 seeds x
// {no-forkjoin, forkjoin} = 100 traces through a fused session with a
// small drain size (many watermark rounds), each lane pinned against an
// independent sequential run.
TEST_P(PublishFuzzTest, InPlaceLaneReadsMatchBatchBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam() ^ 0x7a11, ForkJoin));
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Fused);
    Cfg.StreamBatchEvents = 1 + GetParam() % 13;
    AnalysisSession S(Cfg);
    ASSERT_TRUE(S.declareTablesFrom(T).ok());
    std::mt19937_64 Rng(GetParam() ^ (ForkJoin ? 0xff : 0));
    std::vector<Event> Batch;
    for (EventIdx I = 0; I != T.size(); ++I) {
      Batch.push_back(T.event(I));
      if (Batch.size() == 1 + Rng() % 29 || I + 1 == T.size()) {
        ASSERT_TRUE(S.feed(Batch).ok());
        Batch.clear();
      }
    }
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
    ASSERT_EQ(R.Lanes.size(), std::size(kAllKinds));
    for (size_t L = 0; L != R.Lanes.size(); ++L) {
      std::unique_ptr<Detector> D = makeDetectorFactory(kAllKinds[L])(T);
      RunResult Want = runDetector(*D, T);
      EXPECT_EQ(R.Lanes[L].EventsConsumed, T.size());
      expectSameReport(R.Lanes[L].Report, Want.Report, T,
                       "in-place seed " + std::to_string(GetParam()) + " fj=" +
                           std::to_string(ForkJoin) + "/" +
                           Want.DetectorName);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublishFuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{50}));
