//===- tests/paper_traces_test.cpp - Figures 1-6 verdicts -------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Every engine in the repo is checked against the verdicts the paper
// states for its worked examples: the streaming HB and WCP detectors, the
// reference closures (HB, CP, WCP), the maximal-causality search
// (predictable race) and the deadlock search (predictable deadlock).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/PaperTraces.h"
#include "hb/HbDetector.h"
#include "mcm/McmSearch.h"
#include "reference/ClosureEngine.h"
#include "trace/TraceValidator.h"
#include "verify/Deadlock.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

class PaperTraceTest : public ::testing::TestWithParam<PaperTrace> {};

TEST_P(PaperTraceTest, IsValidTrace) {
  const PaperTrace &P = GetParam();
  ValidationResult V = validateTrace(P.T, /*RequireClosedSections=*/true);
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST_P(PaperTraceTest, StreamingHbVerdict) {
  const PaperTrace &P = GetParam();
  RaceReport R = testutil::run<HbDetector>(P.T);
  EXPECT_EQ(R.numDistinctPairs() > 0, P.HbRace) << R.str(P.T);
}

TEST_P(PaperTraceTest, StreamingWcpVerdict) {
  const PaperTrace &P = GetParam();
  RaceReport R = testutil::run<WcpDetector>(P.T);
  EXPECT_EQ(R.numDistinctPairs() > 0, P.WcpRace) << R.str(P.T);
  if (P.WcpRace && !P.RacyVar.empty()) {
    std::set<std::string> Vars = testutil::racyVars(R, P.T);
    EXPECT_TRUE(Vars.count(P.RacyVar))
        << "expected the race to be on " << P.RacyVar;
  }
}

TEST_P(PaperTraceTest, ReferenceClosureVerdicts) {
  const PaperTrace &P = GetParam();
  ClosureEngine Engine(P.T);
  EXPECT_EQ(!Engine.races(OrderKind::HB).empty(), P.HbRace);
  EXPECT_EQ(!Engine.races(OrderKind::CP).empty(), P.CpRace);
  EXPECT_EQ(!Engine.races(OrderKind::WCP).empty(), P.WcpRace);
}

TEST_P(PaperTraceTest, PredictableRaceMatchesMcm) {
  const PaperTrace &P = GetParam();
  McmOptions Opts;
  Opts.MaxStates = 500000;
  McmResult R = exploreMcm(P.T, Opts);
  ASSERT_FALSE(R.BudgetExhausted) << "paper traces must be fully explored";
  EXPECT_EQ(R.Report.numDistinctPairs() > 0, P.PredictableRace);
}

TEST_P(PaperTraceTest, PredictableDeadlockMatches) {
  const PaperTrace &P = GetParam();
  DeadlockReport R = findPredictableDeadlock(P.T, 500000);
  ASSERT_TRUE(R.SearchExhaustive);
  EXPECT_EQ(R.Found, P.PredictableDeadlock) << describeDeadlock(P.T, R);
}

TEST_P(PaperTraceTest, WeakSoundnessHoldsByConstruction) {
  // Theorem 1 on the paper's own examples: a WCP race implies a
  // predictable race or a predictable deadlock.
  const PaperTrace &P = GetParam();
  if (!P.WcpRace)
    GTEST_SKIP();
  EXPECT_TRUE(P.PredictableRace || P.PredictableDeadlock);
}

INSTANTIATE_TEST_SUITE_P(AllFigures, PaperTraceTest,
                         ::testing::ValuesIn(allPaperTraces()),
                         [](const ::testing::TestParamInfo<PaperTrace> &I) {
                           return I.param.Name;
                         });

// Figure-specific details the parametric harness cannot express.

TEST(PaperFigureDetail, Fig2bRaceIsOnYNotX) {
  PaperTrace P = paperFig2b();
  RaceReport R = testutil::run<WcpDetector>(P.T);
  std::set<std::string> Vars = testutil::racyVars(R, P.T);
  EXPECT_TRUE(Vars.count("y"));
  EXPECT_FALSE(Vars.count("x")) << "rule (a) must order the x accesses";
}

TEST(PaperFigureDetail, Fig3CpOrdersTheZAccessesButWcpDoesNot) {
  PaperTrace P = paperFig3();
  ClosureEngine Engine(P.T);
  // Find r(z) and w(z).
  EventIdx RZ = 0, WZ = 0;
  for (EventIdx I = 0; I != P.T.size(); ++I) {
    const Event &E = P.T.event(I);
    if (isAccess(E.Kind) && P.T.varName(E.var()) == "z") {
      if (E.Kind == EventKind::Read)
        RZ = I;
      else
        WZ = I;
    }
  }
  EXPECT_TRUE(Engine.ordered(OrderKind::CP, RZ, WZ));
  EXPECT_FALSE(Engine.ordered(OrderKind::WCP, RZ, WZ));
  EXPECT_TRUE(Engine.ordered(OrderKind::HB, RZ, WZ));
}

TEST(PaperFigureDetail, Fig5DeadlockInvolvesThreeThreads) {
  // The paper highlights that WCP (unlike CP) can detect deadlocks with
  // more than two threads; Figure 5's wait-for cycle is t1→t2→t3.
  PaperTrace P = paperFig5();
  DeadlockReport R = findPredictableDeadlock(P.T);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Threads.size(), 3u) << describeDeadlock(P.T, R);
}

TEST(PaperFigureDetail, Fig1bWitnessValidates) {
  PaperTrace P = paperFig1b();
  McmOptions Opts;
  Opts.TrackWitnesses = true;
  McmResult R = exploreMcm(P.T, Opts);
  ASSERT_FALSE(R.Report.instances().empty());
  ASSERT_FALSE(R.RaceWitness.empty());
}
