//===- tests/verify_test.cpp - Reordering checker & witnesses -----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/PaperTraces.h"
#include "trace/TraceBuilder.h"
#include "verify/Deadlock.h"
#include "verify/Reordering.h"
#include "verify/WitnessSearch.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

std::vector<EventIdx> identitySchedule(const Trace &T) {
  std::vector<EventIdx> S(T.size());
  for (EventIdx I = 0; I != T.size(); ++I)
    S[I] = I;
  return S;
}

} // namespace

TEST(ReorderingTest, TheTraceItselfIsACorrectReordering) {
  for (const PaperTrace &P : allPaperTraces()) {
    ReorderingCheck C = checkCorrectReordering(P.T, identitySchedule(P.T));
    EXPECT_TRUE(C.Ok) << P.Name << ": " << C.Error;
  }
}

TEST(ReorderingTest, PrefixesAreCorrectReorderings) {
  Trace T = paperFig4().T;
  std::vector<EventIdx> S = identitySchedule(T);
  for (size_t Len = 0; Len <= S.size(); ++Len) {
    std::vector<EventIdx> Prefix(S.begin(), S.begin() + Len);
    EXPECT_TRUE(checkCorrectReordering(T, Prefix).Ok) << "len " << Len;
  }
}

TEST(ReorderingTest, RejectsThreadOrderViolation) {
  TraceBuilder B;
  B.read("t1", "x", "a").write("t1", "x", "b");
  Trace T = testutil::takeValid(B);
  ReorderingCheck C = checkCorrectReordering(T, {1, 0});
  ASSERT_FALSE(C.Ok);
  EXPECT_NE(C.Error.find("thread-order"), std::string::npos);
}

TEST(ReorderingTest, RejectsDuplicateEvents) {
  Trace T = paperFig1a().T;
  EXPECT_FALSE(checkCorrectReordering(T, {0, 0}).Ok);
}

TEST(ReorderingTest, RejectsLockOverlap) {
  TraceBuilder B;
  B.acquire("t1", "l").release("t1", "l").acquire("t2", "l");
  Trace T = testutil::takeValid(B);
  // Schedule t2's acquire before t1's release.
  ReorderingCheck C = checkCorrectReordering(T, {0, 2});
  ASSERT_FALSE(C.Ok);
  EXPECT_NE(C.Error.find("lock semantics"), std::string::npos);
}

TEST(ReorderingTest, RejectsReadSeeingDifferentWriter) {
  // σ: t1 w(x); t2 w(x); t1 r(x)  — r(x)'s writer is t2's write.
  TraceBuilder B;
  B.write("t1", "x", "w1");
  B.write("t2", "x", "w2");
  B.read("t1", "x", "r");
  Trace T = testutil::takeValid(B);
  // Reordering w1, r: the read sees w1 instead of w2.
  ReorderingCheck C = checkCorrectReordering(T, {0, 2});
  ASSERT_FALSE(C.Ok);
  EXPECT_NE(C.Error.find("different writer"), std::string::npos);
  // The original order is fine.
  EXPECT_TRUE(checkCorrectReordering(T, {0, 1, 2}).Ok);
}

TEST(ReorderingTest, Fig2bPaperWitnessValidates) {
  // The paper: "the sequence e5, e6, e1 reveals the race" (line numbers
  // 5, 6, 1 = events 4, 5, 0 — acq(l) by t2, r(y), w(y)).
  Trace T = paperFig2b().T;
  ReorderingCheck C = checkRaceWitness(T, {4, 5, 0});
  EXPECT_TRUE(C.Ok) << C.Error;
}

TEST(ReorderingTest, RaceWitnessNeedsConflictingTail) {
  Trace T = paperFig2b().T;
  // acq, then two reads of x — not conflicting.
  EXPECT_FALSE(checkRaceWitness(T, {0, 1}).Ok);
}

TEST(WitnessSearchTest, FindsWitnessForWcpRacePair) {
  PaperTrace P = paperFig2b();
  // The racy y pair: locations line1 (w) and line6 (r).
  LocId A, BLoc;
  for (EventIdx I = 0; I != P.T.size(); ++I) {
    const Event &E = P.T.event(I);
    if (!isAccess(E.Kind) || P.T.varName(E.var()) != "y")
      continue;
    if (E.Kind == EventKind::Write)
      A = E.Loc;
    else
      BLoc = E.Loc;
  }
  WitnessResult R = findWitness(P.T, RacePair(A, BLoc));
  EXPECT_EQ(R.Kind, WitnessKind::Race);
  EXPECT_FALSE(R.Schedule.empty());
}

TEST(WitnessSearchTest, Fig5RaceClaimResolvesToDeadlock) {
  // Fig 5: WCP flags the z pair, but no correct reordering exhibits that
  // race; weak soundness is honored through the predictable deadlock.
  PaperTrace P = paperFig5();
  LocId A, BLoc;
  for (EventIdx I = 0; I != P.T.size(); ++I) {
    const Event &E = P.T.event(I);
    if (!isAccess(E.Kind) || P.T.varName(E.var()) != "z")
      continue;
    if (E.Kind == EventKind::Read)
      A = E.Loc;
    else
      BLoc = E.Loc;
  }
  WitnessResult R = findWitness(P.T, RacePair(A, BLoc));
  ASSERT_TRUE(R.SearchExhaustive);
  EXPECT_EQ(R.Kind, WitnessKind::Deadlock);
  EXPECT_GE(R.DeadlockedThreads.size(), 2u);
}

TEST(DeadlockTest, FindsFig5Deadlock) {
  DeadlockReport R = findPredictableDeadlock(paperFig5().T);
  ASSERT_TRUE(R.Found);
  ReorderingCheck C =
      checkDeadlockWitness(paperFig5().T, R.Schedule, R.Threads);
  EXPECT_TRUE(C.Ok) << C.Error;
  EXPECT_FALSE(describeDeadlock(paperFig5().T, R).empty());
}

TEST(DeadlockTest, NoDeadlockWithSingleLock) {
  DeadlockReport R = findPredictableDeadlock(paperFig1a().T);
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.SearchExhaustive);
}

TEST(DeadlockTest, ClassicTwoThreadAbBaPattern) {
  TraceBuilder B;
  B.acquire("t1", "a").acquire("t1", "b").release("t1", "b").release("t1",
                                                                     "a");
  B.acquire("t2", "b").acquire("t2", "a").release("t2", "a").release("t2",
                                                                     "b");
  Trace T = testutil::takeValid(B);
  DeadlockReport R = findPredictableDeadlock(T);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Threads.size(), 2u);
  EXPECT_TRUE(checkDeadlockWitness(T, R.Schedule, R.Threads).Ok);
}

TEST(DeadlockTest, LockOrderDisciplineHasNoDeadlock) {
  TraceBuilder B;
  B.acquire("t1", "a").acquire("t1", "b").release("t1", "b").release("t1",
                                                                     "a");
  B.acquire("t2", "a").acquire("t2", "b").release("t2", "b").release("t2",
                                                                     "a");
  DeadlockReport R = findPredictableDeadlock(testutil::takeValid(B));
  EXPECT_FALSE(R.Found);
  EXPECT_TRUE(R.SearchExhaustive);
}
