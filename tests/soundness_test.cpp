//===- tests/soundness_test.cpp - Theorem 1, empirically ----------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Theorem 1 (weak soundness of WCP): if a trace exhibits a WCP-race, it
// has a predictable race or a predictable deadlock. We fuzz small traces,
// run the WCP detector, and for every trace with a WCP race demand that
// the exhaustive maximal-causality search produce a race or deadlock
// witness — which is then re-validated against the correct-reordering
// definition. The same harness checks strong soundness of HB and exposes
// the (expected) unsoundness of the lockset baseline.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomTraceGen.h"
#include "hb/HbDetector.h"
#include "lockset/EraserDetector.h"
#include "mcm/McmSearch.h"
#include "trace/TraceBuilder.h"
#include "verify/WitnessSearch.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

RandomTraceParams smallParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 3;
  P.NumLocks = 1 + Seed % 3;
  P.NumVars = 2 + Seed % 3;
  P.OpsPerThread = 10 + Seed % 8;
  P.MaxLockNesting = 1 + Seed % 2;
  P.WithForkJoin = Seed % 5 == 0;
  return P;
}

} // namespace

class SoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessTest, WcpRaceImpliesPredictableRaceOrDeadlock) {
  Trace T = randomTrace(smallParams(GetParam()));
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  if (Wcp.numDistinctPairs() == 0)
    GTEST_SKIP() << "no WCP race in this trace";
  WitnessResult W = findAnyWitness(T);
  if (!W.SearchExhaustive && W.Kind == WitnessKind::None)
    GTEST_SKIP() << "state space too large to conclude";
  EXPECT_NE(W.Kind, WitnessKind::None)
      << "WCP reported a race but the trace admits neither a predictable "
         "race nor a predictable deadlock:\n"
      << Wcp.str(T);
}

TEST_P(SoundnessTest, FirstWcpRaceHasDirectWitness) {
  // §3.2: "our soundness theorem only guarantees that the first race pair
  // is an actual race" — when no deadlock interferes, the first reported
  // pair should have a race witness.
  Trace T = randomTrace(smallParams(GetParam() ^ 0x99));
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  if (Wcp.instances().empty())
    GTEST_SKIP();
  const RaceInstance &First = Wcp.instances().front();
  WitnessResult W = findWitness(T, First.pair());
  if (!W.SearchExhaustive && W.Kind == WitnessKind::None)
    GTEST_SKIP();
  EXPECT_NE(W.Kind, WitnessKind::None) << First.str(T);
}

TEST_P(SoundnessTest, FirstHbRaceIsAlwaysReal) {
  // Strong soundness of HB holds for the *first* race: later HB-unordered
  // pairs can be blocked by read-value constraints (which is exactly why
  // partial-order detectors only guarantee their first report).
  Trace T = randomTrace(smallParams(GetParam() ^ 0x5a5a));
  RaceReport Hb = testutil::run<HbDetector>(T);
  if (Hb.instances().empty())
    GTEST_SKIP();
  const RaceInstance &First = Hb.instances().front();
  WitnessResult W = findWitness(T, First.pair());
  if (!W.SearchExhaustive && W.Kind != WitnessKind::Race)
    GTEST_SKIP() << "inconclusive (budget)";
  EXPECT_EQ(W.Kind, WitnessKind::Race) << First.str(T);
}

TEST_P(SoundnessTest, HbRacesAreWcpRaces) {
  // WCP ⊆ HB, so every HB race pair must also be reported by WCP.
  Trace T = randomTrace(smallParams(GetParam() ^ 0xc3c3));
  RaceReport Hb = testutil::run<HbDetector>(T);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  for (const RaceInstance &I : Hb.instances())
    EXPECT_TRUE(Wcp.hasPair(I.pair())) << I.str(T);
  EXPECT_GE(Wcp.numDistinctPairs(), Hb.numDistinctPairs());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SoundnessTest,
                         ::testing::Range<uint64_t>(1, 61));

TEST(LocksetUnsoundnessTest, EraserReportsASpuriousRace) {
  // The classic false positive: consistent protection by *different*
  // locks at different phases, with a happens-before handoff making the
  // accesses perfectly ordered. Eraser's lockset intersection empties and
  // it warns; no predictable race exists.
  //
  //   t1: acq(a) w(x) rel(a)
  //   t2: acq(a) r(x) w(x) rel(a)   (handoff: same lock a)
  //   t2: acq(b) w(x) rel(b)        (t2 retires lock a for x)
  Trace T = [] {
    TraceBuilder B;
    B.acquire("t1", "a").write("t1", "x", "p1").release("t1", "a");
    B.acquire("t2", "a").read("t2", "x", "p2").write("t2", "x", "p3");
    B.release("t2", "a");
    B.acquire("t2", "b").write("t2", "x", "p4").release("t2", "b");
    return testutil::takeValid(B);
  }();
  RaceReport Eraser = testutil::run<EraserDetector>(T);
  EXPECT_GE(Eraser.numDistinctPairs(), 1u) << "Eraser should warn here";
  // But there is no predictable race (exhaustively checked).
  McmResult M = exploreMcm(T);
  ASSERT_FALSE(M.BudgetExhausted);
  EXPECT_EQ(M.Report.numDistinctPairs(), 0u);
  // And the sound detectors stay quiet.
  EXPECT_EQ(testutil::run<WcpDetector>(T).numDistinctPairs(), 0u);
  EXPECT_EQ(testutil::run<HbDetector>(T).numDistinctPairs(), 0u);
}
