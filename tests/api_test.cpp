//===- tests/api_test.cpp - Session API: streaming, config, statuses ----------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The session API's contract has three legs, pinned here:
//
//   1. equivalence — a streaming session is the batch engine's pass
//      spread over time: for every mode (sequential, fused, windowed,
//      var-sharded) and detector, the final report is bit-identical to
//      the batch entry points, on 100 seeded random traces per detector,
//      whether events arrive as one trace, as push batches, through
//      mid-stream table growth (growable state; never a restart), or from
//      a file (binary and text chunks both overlap analysis). Windowed/var-sharded
//      partial snapshots must additionally be torn-merge free: every
//      mid-stream report is a prefix of the final one;
//   2. session protocol — mid-stream partial reports, feed-after-finish
//      and double-finish rejection, empty-session preconditions, all as
//      structured Status codes rather than strings;
//   3. config validation — every inconsistent AnalysisConfig combination
//      is rejected up front with InvalidConfig.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "api/AnalysisSession.h"
#include "gen/RandomTraceGen.h"
#include "hb/HbDetector.h"
#include "io/TraceFile.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceValidator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace rapid;
using testutil::expectSameReport;

namespace {

constexpr DetectorKind kAllKinds[] = {DetectorKind::Hb, DetectorKind::Wcp,
                                      DetectorKind::FastTrack,
                                      DetectorKind::Eraser};

AnalysisConfig allDetectorConfig(RunMode Mode) {
  AnalysisConfig Cfg;
  Cfg.Mode = Mode;
  for (DetectorKind K : kAllKinds)
    Cfg.addDetector(K);
  return Cfg;
}

/// Varied trace shapes, mirroring the differential harness.
RandomTraceParams fuzzParams(uint64_t Seed, bool ForkJoin) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 5;
  P.NumLocks = 1 + Seed % 4;
  P.NumVars = 1 + (Seed * 3) % 9;
  P.OpsPerThread = 25 + (Seed * 11) % 50;
  P.MaxLockNesting = 1 + Seed % 3;
  P.AcquirePercent = 10 + (Seed * 5) % 25;
  P.WritePercent = 30 + (Seed * 13) % 40;
  P.WithForkJoin = ForkJoin;
  return P;
}

/// Checks every lane of \p R against a fresh sequential run over \p T.
void expectLanesMatchSequential(const AnalysisResult &R, const Trace &T,
                                const std::string &Label) {
  ASSERT_EQ(R.Lanes.size(), std::size(kAllKinds)) << Label;
  for (size_t L = 0; L != R.Lanes.size(); ++L) {
    ASSERT_TRUE(R.Lanes[L].LaneStatus.ok())
        << Label << ": " << R.Lanes[L].LaneStatus.str();
    std::unique_ptr<Detector> D = makeDetectorFactory(kAllKinds[L])(T);
    RunResult Want = runDetector(*D, T);
    EXPECT_EQ(R.Lanes[L].DetectorName, Want.DetectorName) << Label;
    EXPECT_EQ(R.Lanes[L].EventsConsumed, T.size()) << Label;
    expectSameReport(R.Lanes[L].Report, Want.Report, T,
                     Label + "/" + Want.DetectorName);
  }
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "rapidpp_api_" + Name;
}

/// Torn-merge detector: \p Partial must be an exact prefix of \p Final's
/// instance sequence (same fields, same order). Windowed sessions merge
/// whole retired windows; var-sharded sessions merge below the fully
/// checked frontier — either way a mid-stream report may only ever grow
/// into the final one, never reorder or lose findings.
void expectReportIsPrefix(const RaceReport &Partial, const RaceReport &Final,
                          const std::string &Label) {
  ASSERT_LE(Partial.instances().size(), Final.instances().size()) << Label;
  for (size_t I = 0; I != Partial.instances().size(); ++I) {
    const RaceInstance &P = Partial.instances()[I];
    const RaceInstance &F = Final.instances()[I];
    ASSERT_TRUE(P.EarlierIdx == F.EarlierIdx && P.LaterIdx == F.LaterIdx &&
                P.EarlierLoc == F.EarlierLoc && P.LaterLoc == F.LaterLoc &&
                P.Var == F.Var)
        << Label << ": instance #" << I << " diverges mid-stream";
  }
}

class ApiStreamFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

// ---- Streaming vs batch, bit for bit ----------------------------------------

// 50 seeds x {no-forkjoin, forkjoin} = 100 distinct traces, each analyzed
// by all four detectors: a sequential-mode session fed the whole trace
// must reproduce runDetector exactly, per lane.
TEST_P(ApiStreamFuzzTest, SessionFeedTraceMatchesBatchBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam(), ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    ASSERT_TRUE(S.feedTrace(T).ok());
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
    EXPECT_TRUE(R.Streamed);
    EXPECT_EQ(R.EventsIngested, T.size());
    expectLanesMatchSequential(R, T,
                               "feedTrace seed " + std::to_string(GetParam()) +
                                   " fj=" + std::to_string(ForkJoin));
  }
}

// Same equivalence with events arriving in small push batches against
// pre-declared tables, forcing many publication rounds (batch granularity
// 7 events) — the consumers genuinely run behind the producer here.
TEST_P(ApiStreamFuzzTest, SessionPushBatchesMatchBatchBitForBit) {
  Trace T = randomTrace(fuzzParams(GetParam() ^ 0x9e37, GetParam() % 2 == 0));
  AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
  Cfg.StreamBatchEvents = 7;
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.declareTablesFrom(T).ok());
  std::vector<Event> Batch;
  for (EventIdx I = 0; I != T.size(); ++I) {
    Batch.push_back(T.event(I));
    if (Batch.size() == 13 || I + 1 == T.size()) {
      ASSERT_TRUE(S.feed(Batch).ok());
      Batch.clear();
    }
  }
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
  expectLanesMatchSequential(R, T,
                             "push seed " + std::to_string(GetParam()));
  for (const LaneReport &L : R.Lanes)
    EXPECT_EQ(L.Restarts, 0u) << "tables were declared up front";
}

// Fused mode: one consumer walks the published prefix once, feeding every
// detector — still bit-identical to independent sequential runs.
TEST_P(ApiStreamFuzzTest, FusedSessionMatchesBatchBitForBit) {
  Trace T = randomTrace(fuzzParams(GetParam() ^ 0x51ed, GetParam() % 2 == 1));
  AnalysisSession S(allDetectorConfig(RunMode::Fused));
  ASSERT_TRUE(S.feedTrace(T).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
  expectLanesMatchSequential(R, T,
                             "fused seed " + std::to_string(GetParam()));
}

// Windowed sessions stream: windows dispatch onto the pool as their event
// range publishes, and the merged result must equal the batch windowed
// engine bit for bit — with every mid-stream partial a prefix of the
// final report (no torn merges). 50 seeds x 4 detectors, varied window
// and push-batch sizes.
TEST_P(ApiStreamFuzzTest, WindowedSessionStreamsBitForBit) {
  uint64_t Seed = GetParam();
  Trace T = randomTrace(fuzzParams(Seed ^ 0x77aa, Seed % 2 == 0));
  AnalysisConfig Cfg = allDetectorConfig(RunMode::Windowed);
  Cfg.WindowEvents = 8 + Seed % 57;
  Cfg.StreamBatchEvents = 1 + Seed % 9;
  Cfg.Threads = 1 + Seed % 3;
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.declareTablesFrom(T).ok());
  std::vector<AnalysisResult> Partials;
  std::vector<Event> Batch;
  for (EventIdx I = 0; I != T.size(); ++I) {
    Batch.push_back(T.event(I));
    if (Batch.size() == 17 || I + 1 == T.size()) {
      ASSERT_TRUE(S.feed(Batch).ok());
      Batch.clear();
      if (I % 64 == 63)
        Partials.push_back(S.partialResult());
    }
  }
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.ok()) << R.firstError().str();
  EXPECT_TRUE(R.Streamed);
  AnalysisResult Want = analyzeTrace(Cfg, T);
  ASSERT_TRUE(Want.ok()) << Want.firstError().str();
  EXPECT_EQ(R.NumShards, Want.NumShards) << "window count";
  ASSERT_EQ(R.Lanes.size(), Want.Lanes.size());
  for (size_t L = 0; L != R.Lanes.size(); ++L) {
    std::string Label = "windowed seed " + std::to_string(Seed) + "/" +
                        Want.Lanes[L].DetectorName;
    EXPECT_EQ(R.Lanes[L].DetectorName, Want.Lanes[L].DetectorName) << Label;
    EXPECT_EQ(R.Lanes[L].EventsConsumed, T.size()) << Label;
    EXPECT_EQ(R.Lanes[L].Restarts, 0u) << "tables were declared up front";
    expectSameReport(R.Lanes[L].Report, Want.Lanes[L].Report, T, Label);
    for (const AnalysisResult &Mid : Partials) {
      ASSERT_TRUE(Mid.Partial);
      expectReportIsPrefix(Mid.Lanes[L].Report, R.Lanes[L].Report, Label);
    }
  }
}

// Var-sharded sessions stream too: the capture clock pass runs behind
// ingestion and shard checks replay published AccessLog prefixes; the
// merged result must equal both the batch var-sharded engine and (for
// capture-capable detectors) plain sequential runDetector, bit for bit,
// under both shard strategies.
TEST_P(ApiStreamFuzzTest, VarShardedSessionStreamsBitForBit) {
  uint64_t Seed = GetParam();
  Trace T = randomTrace(fuzzParams(Seed ^ 0x1c3f, Seed % 2 == 1));
  AnalysisConfig Cfg = allDetectorConfig(RunMode::VarSharded);
  Cfg.VarShards = 1 + Seed % 7;
  Cfg.Strategy = Seed % 2 ? ShardStrategy::FrequencyBalanced
                          : ShardStrategy::Modulo;
  Cfg.StreamBatchEvents = 1 + Seed % 11;
  Cfg.Threads = 1 + Seed % 3;
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.declareTablesFrom(T).ok());
  std::vector<AnalysisResult> Partials;
  std::vector<Event> Batch;
  for (EventIdx I = 0; I != T.size(); ++I) {
    Batch.push_back(T.event(I));
    if (Batch.size() == 13 || I + 1 == T.size()) {
      ASSERT_TRUE(S.feed(Batch).ok());
      Batch.clear();
      if (I % 64 == 63)
        Partials.push_back(S.partialResult());
    }
  }
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.ok()) << R.firstError().str();
  EXPECT_TRUE(R.Streamed);
  EXPECT_EQ(R.VarShards, Cfg.VarShards);
  AnalysisResult Want = analyzeTrace(Cfg, T);
  ASSERT_TRUE(Want.ok()) << Want.firstError().str();
  ASSERT_EQ(R.Lanes.size(), std::size(kAllKinds));
  for (size_t L = 0; L != R.Lanes.size(); ++L) {
    std::string Label = "var-sharded seed " + std::to_string(Seed) + "/" +
                        Want.Lanes[L].DetectorName;
    EXPECT_EQ(R.Lanes[L].DetectorName, Want.Lanes[L].DetectorName) << Label;
    EXPECT_EQ(R.Lanes[L].EventsConsumed, T.size()) << Label;
    EXPECT_EQ(R.Lanes[L].Restarts, 0u) << "tables were declared up front";
    expectSameReport(R.Lanes[L].Report, Want.Lanes[L].Report, T,
                     Label + "/vs-batch");
    // The var-sharded contract on top: nothing may differ from the plain
    // sequential walk either.
    std::unique_ptr<Detector> D = makeDetectorFactory(kAllKinds[L])(T);
    RunResult Seq = runDetector(*D, T);
    expectSameReport(R.Lanes[L].Report, Seq.Report, T, Label + "/vs-seq");
    for (const AnalysisResult &Mid : Partials)
      expectReportIsPrefix(Mid.Lanes[L].Report, R.Lanes[L].Report, Label);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApiStreamFuzzTest,
                         ::testing::Range<uint64_t>(1, 51));

// ---- Table growth mid-stream (growable state, no restarts) ------------------

TEST(ApiSessionTest, LateDeclarationsGrowLanesAndStayBitForBit) {
  AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
  Cfg.StreamBatchEvents = 1; // Publish/consume as eagerly as possible.
  AnalysisSession S(Cfg);
  ThreadId T0 = S.declareThread("T0");
  ThreadId T1 = S.declareThread("T1");
  VarId X = S.declareVar("x");
  LocId L1 = S.declareLoc("L1"), L2 = S.declareLoc("L2");
  ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, X.value(), L1)).ok());
  ASSERT_TRUE(S.feed(Event(EventKind::Write, T1, X.value(), L2)).ok());

  // Wait until some lane actually consumed under the old tables, so the
  // upcoming declaration is a genuine mid-stream growth for it.
  for (int Spin = 0; Spin != 5000; ++Spin) {
    AnalysisResult Mid = S.partialResult();
    ASSERT_TRUE(Mid.Partial);
    uint64_t MaxConsumed = 0;
    for (const LaneReport &L : Mid.Lanes)
      MaxConsumed = std::max(MaxConsumed, L.EventsConsumed);
    if (MaxConsumed == 2)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  VarId Y = S.declareVar("y");
  LocId L3 = S.declareLoc("L3"), L4 = S.declareLoc("L4");
  ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, Y.value(), L3)).ok());
  ASSERT_TRUE(S.feed(Event(EventKind::Read, T1, Y.value(), L4)).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();

  // Bit-for-bit against batch runs over the final ingested trace; both
  // the x and y races must be present (HB sees 2 write-write/write-read
  // pairs).
  const Trace &T = S.trace();
  ASSERT_EQ(T.size(), 4u);
  expectLanesMatchSequential(R, T, "late declarations");
  EXPECT_GT(R.Lanes[0].Report.numDistinctPairs(), 1u);
  for (const LaneReport &L : R.Lanes)
    EXPECT_EQ(L.Restarts, 0u)
        << L.DetectorName << ": growable state must never restart";
}

// Late declarations in the streamed batch modes: tables grow after a lane
// already consumed events. Growable detector state admits the new ids in
// place — the windowed builder keeps its window set, the capture pass
// keeps its log and checkers — so no lane restarts and the final report
// still matches the batch engine over the final trace, bit for bit.
TEST(ApiSessionTest, StreamedBatchModesGrowOnLateDeclarations) {
  for (RunMode Mode : {RunMode::Windowed, RunMode::VarSharded}) {
    AnalysisConfig Cfg = allDetectorConfig(Mode);
    Cfg.StreamBatchEvents = 1; // Publish/consume as eagerly as possible.
    Cfg.Threads = 2;
    if (Mode == RunMode::Windowed)
      Cfg.WindowEvents = 1; // Every event closes a window.
    else
      Cfg.VarShards = 3;
    AnalysisSession S(Cfg);
    ThreadId T0 = S.declareThread("T0");
    ThreadId T1 = S.declareThread("T1");
    VarId X = S.declareVar("x");
    LocId L1 = S.declareLoc("L1"), L2 = S.declareLoc("L2");
    ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, X.value(), L1)).ok());
    ASSERT_TRUE(S.feed(Event(EventKind::Write, T1, X.value(), L2)).ok());

    // Wait until some lane consumed under the old tables, so the upcoming
    // declaration is a genuine mid-stream growth for it.
    bool Progressed = false;
    for (int Spin = 0; Spin != 5000 && !Progressed; ++Spin) {
      AnalysisResult Mid = S.partialResult();
      ASSERT_TRUE(Mid.Partial);
      for (const LaneReport &L : Mid.Lanes)
        Progressed = Progressed || L.EventsConsumed == 2;
      if (!Progressed)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(Progressed) << runModeName(Mode);

    VarId Y = S.declareVar("y");
    LocId L3 = S.declareLoc("L3"), L4 = S.declareLoc("L4");
    ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, Y.value(), L3)).ok());
    ASSERT_TRUE(S.feed(Event(EventKind::Read, T1, Y.value(), L4)).ok());
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.ok()) << R.firstError().str();

    const Trace &T = S.trace();
    ASSERT_EQ(T.size(), 4u);
    AnalysisResult Want = analyzeTrace(Cfg, T);
    ASSERT_TRUE(Want.ok()) << Want.firstError().str();
    for (size_t L = 0; L != R.Lanes.size(); ++L) {
      std::string Label = std::string("late decls ") + runModeName(Mode) +
                          "/" + Want.Lanes[L].DetectorName;
      EXPECT_EQ(R.Lanes[L].DetectorName, Want.Lanes[L].DetectorName) << Label;
      expectSameReport(R.Lanes[L].Report, Want.Lanes[L].Report, T, Label);
      if (Mode == RunMode::VarSharded) { // 1-event windows see no races.
        EXPECT_GT(R.Lanes[L].Report.numDistinctPairs(), 0u) << Label;
      }
      EXPECT_EQ(R.Lanes[L].Restarts, 0u)
          << Label << ": growable state must never restart";
    }
  }
}

// Torn-merge stress: a producer thread pushes batches while this thread
// hammers partialResult(). Every snapshot must be well-formed — lanes ok,
// races confined to the consumed prefix, instance counts monotone — and a
// prefix of the final report. Run under TSan in CI, this also pins the
// publication protocol data-race-free for the streamed batch modes.
TEST(ApiSessionTest, StreamedBatchModesPartialResultStressUnderIngestion) {
  for (RunMode Mode : {RunMode::Windowed, RunMode::VarSharded}) {
    Trace T = randomTrace(fuzzParams(41, true));
    AnalysisConfig Cfg;
    Cfg.Mode = Mode;
    Cfg.addDetector(DetectorKind::Hb);
    Cfg.addDetector(DetectorKind::FastTrack);
    Cfg.StreamBatchEvents = 8;
    Cfg.Threads = 2;
    if (Mode == RunMode::Windowed)
      Cfg.WindowEvents = 16;
    else
      Cfg.VarShards = 4;
    AnalysisSession S(Cfg);
    ASSERT_TRUE(S.declareTablesFrom(T).ok());

    // The session contract: feeds come from one thread; partialResult may
    // run concurrently with both the producer and the consumers.
    std::thread Producer([&] {
      std::vector<Event> Batch;
      for (EventIdx I = 0; I != T.size(); ++I) {
        Batch.push_back(T.event(I));
        if (Batch.size() == 23 || I + 1 == T.size()) {
          ASSERT_TRUE(S.feed(Batch).ok());
          Batch.clear();
          std::this_thread::yield();
        }
      }
    });
    std::vector<AnalysisResult> Snaps;
    for (int Spin = 0; Spin != 200; ++Spin) {
      Snaps.push_back(S.partialResult());
      std::this_thread::yield();
    }
    Producer.join();
    Snaps.push_back(S.partialResult());
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.ok()) << R.firstError().str();

    std::vector<size_t> LastCount(R.Lanes.size(), 0);
    for (const AnalysisResult &Mid : Snaps) {
      ASSERT_TRUE(Mid.Partial);
      ASSERT_TRUE(Mid.Overall.ok()) << Mid.Overall.str();
      ASSERT_EQ(Mid.Lanes.size(), R.Lanes.size());
      for (size_t L = 0; L != Mid.Lanes.size(); ++L) {
        const LaneReport &Lane = Mid.Lanes[L];
        ASSERT_TRUE(Lane.LaneStatus.ok()) << Lane.LaneStatus.str();
        EXPECT_LE(Lane.EventsConsumed, Mid.EventsIngested);
        for (const RaceInstance &Inst : Lane.Report.instances())
          EXPECT_LT(Inst.LaterIdx, Mid.EventsIngested);
        EXPECT_GE(Lane.Report.instances().size(), LastCount[L])
            << "mid-stream reports must only grow";
        LastCount[L] = Lane.Report.instances().size();
        expectReportIsPrefix(Lane.Report, R.Lanes[L].Report,
                             std::string("stress ") + runModeName(Mode));
      }
    }
    // And the final result still matches the batch engine bit for bit.
    AnalysisResult Want = analyzeTrace(Cfg, T);
    for (size_t L = 0; L != R.Lanes.size(); ++L)
      expectSameReport(R.Lanes[L].Report, Want.Lanes[L].Report, T,
                       std::string("stress final ") + runModeName(Mode));
  }
}

// ---- File ingestion ---------------------------------------------------------

TEST(ApiSessionTest, FeedFileBinaryStreamsWithoutRestartsBitForBit) {
  Trace T = randomTrace(fuzzParams(17, true));
  std::string Path = tempPath("stream.bin");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
  Cfg.StreamBatchEvents = 16; // Many publication rounds per file.
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.feedFile(Path).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
  expectLanesMatchSequential(R, S.trace(), "feedFile binary");
  for (const LaneReport &L : R.Lanes) {
    // Binary headers carry all tables up front: streaming must never
    // have restarted a lane.
    EXPECT_EQ(L.Restarts, 0u) << L.DetectorName;
  }
  std::remove(Path.c_str());
}

TEST(ApiSessionTest, FeedFileTextMatchesBatchBitForBit) {
  Trace T = randomTrace(fuzzParams(23, false));
  std::string Path = tempPath("stream.txt");
  ASSERT_EQ(saveTraceFile(T, Path), "");
  AnalysisSession S(allDetectorConfig(RunMode::Sequential));
  ASSERT_TRUE(S.feedFile(Path).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok()) << R.Overall.str();
  expectLanesMatchSequential(R, S.trace(), "feedFile text");
  std::remove(Path.c_str());
}

TEST(ApiSessionTest, FeedFileFailuresAreStructured) {
  {
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    Status St = S.feedFile("/nonexistent/dir/trace.bin");
    EXPECT_EQ(St.Code, StatusCode::IoError) << St.str();
    EXPECT_NE(St.Message.find("cannot open"), std::string::npos) << St.str();
    AnalysisResult R = S.finish();
    EXPECT_EQ(R.Overall.Code, StatusCode::IoError);
    EXPECT_FALSE(R.ok());
  }
  {
    std::string Path = tempPath("bad.txt");
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    std::fputs("T0|w(x)|L1\nT1|frobnicate(x)|L2\n", F);
    std::fclose(F);
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    Status St = S.feedFile(Path);
    EXPECT_EQ(St.Code, StatusCode::ParseError) << St.str();
    EXPECT_NE(St.Message.find("line 2"), std::string::npos) << St.str();
    AnalysisResult R = S.finish();
    EXPECT_EQ(R.Overall.Code, StatusCode::ParseError);
    std::remove(Path.c_str());
  }
}

// Ill-formed traces must never reach live detector lanes (their lock
// handling assumes the §2.1 axioms): the session validates event by
// event before publication, freezes ingestion at the first violation
// with a sticky ValidationError, and keeps the valid prefix analyzed.
TEST(ApiSessionTest, IllFormedTracesFreezeIngestionWithValidationError) {
  {
    // Push feed: a release without a matching acquire.
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    ThreadId T0 = S.declareThread("T0");
    ThreadId T1 = S.declareThread("T1");
    VarId X = S.declareVar("x");
    LockId L = S.declareLock("l");
    LocId Loc = S.declareLoc("L1");
    ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, X.value(), Loc)).ok());
    ASSERT_TRUE(S.feed(Event(EventKind::Write, T1, X.value(), Loc)).ok());
    Status Bad = S.feed(Event(EventKind::Release, T0, L.value(), Loc));
    EXPECT_EQ(Bad.Code, StatusCode::ValidationError) << Bad.str();
    EXPECT_NE(Bad.Message.find("does not hold"), std::string::npos)
        << Bad.str();
    // Sticky: further feeds rejected, finish reports the error, and the
    // valid prefix was still analyzed.
    EXPECT_EQ(S.feed(Event(EventKind::Write, T0, X.value(), Loc)).Code,
              StatusCode::ValidationError);
    AnalysisResult R = S.finish();
    EXPECT_EQ(R.Overall.Code, StatusCode::ValidationError);
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.EventsIngested, 2u);
    for (const LaneReport &Lane : R.Lanes) {
      EXPECT_TRUE(Lane.LaneStatus.ok()) << Lane.LaneStatus.str();
      EXPECT_EQ(Lane.EventsConsumed, 2u) << Lane.DetectorName;
    }
    EXPECT_GT(R.Lanes[0].Report.numDistinctPairs(), 0u)
        << "the valid racy prefix must still be reported";
  }
  {
    // Same through feedFile on a text trace.
    std::string Path = tempPath("ill.txt");
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    std::fputs("T0|w(x)|L1\nT0|rel(l)|L2\n", F);
    std::fclose(F);
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    Status St = S.feedFile(Path);
    EXPECT_EQ(St.Code, StatusCode::ValidationError) << St.str();
    AnalysisResult R = S.finish();
    EXPECT_EQ(R.Overall.Code, StatusCode::ValidationError);
    EXPECT_EQ(R.EventsIngested, 1u);
    std::remove(Path.c_str());
  }
}

// ---- Mid-stream partial reports ---------------------------------------------

TEST(ApiSessionTest, PartialReportsSurfaceRacesMidStream) {
  // Feed a racy prefix, wait for the lanes to drain it, and the partial
  // snapshot must already contain the race — before any finish().
  TraceBuilder B;
  for (int I = 0; I != 20; ++I)
    B.write(I % 2 ? "T1" : "T0", "x");
  Trace Prefix = testutil::takeValid(B);

  AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
  Cfg.StreamBatchEvents = 4;
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.feedTrace(Prefix).ok());

  bool Drained = false;
  AnalysisResult Mid;
  for (int Spin = 0; Spin != 5000 && !Drained; ++Spin) {
    Mid = S.partialResult();
    ASSERT_TRUE(Mid.Overall.ok()) << Mid.Overall.str();
    ASSERT_TRUE(Mid.Partial);
    Drained = true;
    for (const LaneReport &L : Mid.Lanes)
      Drained = Drained && L.EventsConsumed == Prefix.size();
    if (!Drained)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(Drained) << "lanes did not catch up with the published prefix";
  EXPECT_EQ(Mid.EventsIngested, Prefix.size());
  for (const LaneReport &L : Mid.Lanes)
    EXPECT_GT(L.Report.numDistinctPairs(), 0u)
        << L.DetectorName << " saw no race mid-stream";

  // The session keeps accepting events after the snapshot.
  ThreadId T0 = S.declareThread("T0");
  VarId X = S.declareVar("x");
  LocId L = S.declareLoc("tail");
  ASSERT_TRUE(S.feed(Event(EventKind::Read, T0, X.value(), L)).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok());
  EXPECT_FALSE(R.Partial);
  EXPECT_EQ(R.EventsIngested, Prefix.size() + 1);
  expectLanesMatchSequential(R, S.trace(), "after partials");
}

// ---- Session protocol: structured state errors ------------------------------

TEST(ApiSessionTest, FeedAfterFinishAndDoubleFinishAreRejected) {
  AnalysisSession S(allDetectorConfig(RunMode::Sequential));
  ThreadId T0 = S.declareThread("T0");
  VarId X = S.declareVar("x");
  LocId L = S.declareLoc("L");
  ASSERT_TRUE(S.feed(Event(EventKind::Write, T0, X.value(), L)).ok());
  AnalysisResult R = S.finish();
  ASSERT_TRUE(R.Overall.ok());
  EXPECT_TRUE(S.finished());

  Status Fed = S.feed(Event(EventKind::Write, T0, X.value(), L));
  EXPECT_EQ(Fed.Code, StatusCode::InvalidState) << Fed.str();
  EXPECT_EQ(S.feedTrace(Trace()).Code, StatusCode::InvalidState);
  EXPECT_EQ(S.feedFile("x.bin").Code, StatusCode::InvalidState);

  AnalysisResult Again = S.finish();
  EXPECT_EQ(Again.Overall.Code, StatusCode::InvalidState) << "double finish";
  EXPECT_FALSE(Again.ok());

  AnalysisResult Partial = S.partialResult();
  EXPECT_EQ(Partial.Overall.Code, StatusCode::InvalidState);
}

TEST(ApiSessionTest, IngestPreconditionsAreEnforced) {
  Trace T = randomTrace(fuzzParams(3, false));
  {
    // feedTrace/feedFile demand an empty session.
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    S.declareThread("T0");
    EXPECT_EQ(S.feedTrace(T).Code, StatusCode::InvalidState);
    EXPECT_EQ(S.declareTablesFrom(T).Code, StatusCode::InvalidState);
  }
  {
    // Events with undeclared ids reject the whole batch atomically.
    AnalysisSession S(allDetectorConfig(RunMode::Sequential));
    ThreadId T0 = S.declareThread("T0");
    LocId L = S.declareLoc("L");
    std::vector<Event> Batch = {Event(EventKind::Write, T0, /*var=*/0, L)};
    Status St = S.feed(Batch);
    EXPECT_EQ(St.Code, StatusCode::ValidationError) << St.str();
    EXPECT_EQ(S.eventsFed(), 0u);
    AnalysisResult R = S.finish();
    EXPECT_TRUE(R.Overall.ok()) << "a rejected batch must not poison the "
                                   "session";
  }
}

// ---- Batch modes through the session ----------------------------------------

TEST(ApiSessionTest, WindowedAndVarShardedSessionsMatchLegacyAdapters) {
  Trace T = randomTrace(fuzzParams(29, true));
  for (DetectorKind K : kAllKinds) {
    DetectorFactory Make = makeDetectorFactory(K);
    {
      AnalysisConfig Cfg;
      Cfg.addDetector(K);
      Cfg.Mode = RunMode::Windowed;
      Cfg.WindowEvents = 64;
      Cfg.Threads = 1;
      AnalysisSession S(Cfg);
      ASSERT_TRUE(S.feedTrace(T).ok());
      AnalysisResult R = S.finish();
      ASSERT_TRUE(R.ok()) << R.firstError().str();
      EXPECT_TRUE(R.Streamed) << "windowed sessions stream since PR 4";
      RunResult Want = runDetectorWindowed(Make, T, 64);
      EXPECT_EQ(R.Lanes[0].DetectorName, Want.DetectorName);
      EXPECT_GT(R.NumShards, 1u);
      expectSameReport(R.Lanes[0].Report, Want.Report, T,
                       std::string("windowed session/") +
                           detectorKindName(K));
    }
    for (ShardStrategy Strategy :
         {ShardStrategy::Modulo, ShardStrategy::FrequencyBalanced}) {
      AnalysisConfig Cfg;
      Cfg.addDetector(K);
      Cfg.Mode = RunMode::VarSharded;
      Cfg.VarShards = 4;
      Cfg.Strategy = Strategy;
      AnalysisSession S(Cfg);
      ASSERT_TRUE(S.feedTrace(T).ok());
      AnalysisResult R = S.finish();
      ASSERT_TRUE(R.ok()) << R.firstError().str();
      EXPECT_EQ(R.VarShards, 4u);
      std::unique_ptr<Detector> D = Make(T);
      RunResult Want = runDetector(*D, T);
      expectSameReport(R.Lanes[0].Report, Want.Report, T,
                       std::string("var-sharded session/") +
                           detectorKindName(K));
    }
  }
}

// ---- Config validation ------------------------------------------------------

TEST(AnalysisConfigTest, ValidationRejectsInconsistentCombinations) {
  auto expectInvalid = [](const AnalysisConfig &Cfg, const char *Label) {
    Status St = Cfg.validate();
    EXPECT_EQ(St.Code, StatusCode::InvalidConfig) << Label;
    EXPECT_FALSE(St.Message.empty()) << Label;
  };
  expectInvalid(AnalysisConfig(), "no detectors");
  {
    AnalysisConfig Cfg;
    Cfg.Detectors.push_back(DetectorSpec()); // Custom without factory.
    expectInvalid(Cfg, "custom without factory");
  }
  {
    AnalysisConfig Cfg;
    Cfg.addDetector(DetectorKind::Hb);
    Cfg.Detectors.back().Make = makeDetectorFactory(DetectorKind::Wcp);
    expectInvalid(Cfg, "kind plus factory is ambiguous");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Windowed);
    expectInvalid(Cfg, "windowed without WindowEvents");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
    Cfg.WindowEvents = 100;
    expectInvalid(Cfg, "WindowEvents outside windowed mode");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::VarSharded);
    expectInvalid(Cfg, "var-sharded without VarShards");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Fused);
    Cfg.VarShards = 2;
    expectInvalid(Cfg, "VarShards outside var-sharded mode");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
    Cfg.Strategy = ShardStrategy::FrequencyBalanced;
    expectInvalid(Cfg, "balanced strategy without var-sharding");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::Sequential);
    Cfg.StreamBatchEvents = 0;
    expectInvalid(Cfg, "zero stream batch");
  }
  {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::VarSharded);
    Cfg.VarShards = 2;
    Cfg.DrainBatch = 0;
    expectInvalid(Cfg, "zero drain batch");
  }

  // The same statuses flow through the entry points.
  AnalysisResult R = analyzeTrace(AnalysisConfig(), Trace());
  EXPECT_EQ(R.Overall.Code, StatusCode::InvalidConfig);
  AnalysisSession S{AnalysisConfig()};
  EXPECT_EQ(S.status().Code, StatusCode::InvalidConfig);
  EXPECT_EQ(S.feed(Event()).Code, StatusCode::InvalidConfig);
  EXPECT_EQ(S.finish().Overall.Code, StatusCode::InvalidConfig);

  // Invalid configs in the pool-backed modes too: no streaming engine is
  // started, and finish()/partialResult() must report the config error,
  // not touch a pool that was never created.
  for (RunMode Mode : {RunMode::Windowed, RunMode::VarSharded}) {
    AnalysisConfig Cfg = allDetectorConfig(Mode); // Missing window/shards.
    AnalysisSession Bad(Cfg);
    EXPECT_EQ(Bad.status().Code, StatusCode::InvalidConfig)
        << runModeName(Mode);
    EXPECT_EQ(Bad.partialResult().Overall.Code, StatusCode::InvalidConfig);
    AnalysisResult Fin = Bad.finish();
    EXPECT_EQ(Fin.Overall.Code, StatusCode::InvalidConfig)
        << runModeName(Mode);
    EXPECT_TRUE(Fin.Lanes.empty());
  }
}

// DrainBatch only paces how the var-sharded drain slices its replay work
// into pool tasks; any value must leave every lane bit-identical to the
// sequential walk. Sweep the extremes: per-event draining, a mid-size
// batch, and one far larger than the trace (single-task drain).
TEST(ApiSessionTest, DrainBatchSweepIsBitForBit) {
  Trace T = randomTrace(fuzzParams(29, /*ForkJoin=*/true));
  for (uint64_t Batch : {uint64_t(1), uint64_t(64), uint64_t(100000)}) {
    AnalysisConfig Cfg = allDetectorConfig(RunMode::VarSharded);
    Cfg.VarShards = 4;
    Cfg.Threads = 2;
    Cfg.DrainBatch = Batch;
    AnalysisSession S(Cfg);
    ASSERT_TRUE(S.declareTablesFrom(T).ok());
    ASSERT_TRUE(S.feed(T.events()).ok());
    AnalysisResult R = S.finish();
    ASSERT_TRUE(R.ok()) << R.firstError().str();
    expectLanesMatchSequential(R, T,
                               "drain batch " + std::to_string(Batch));
  }
}

// A lane that throws mid-stream fails alone with a structured status; the
// other lanes complete.
TEST(ApiSessionTest, ThrowingLaneFailsAloneInStreamingSessions) {
  Trace T = randomTrace(fuzzParams(7, false));
  AnalysisConfig Cfg;
  Cfg.addDetector(DetectorKind::Hb);
  Cfg.addDetector(
      [](const Trace &) -> std::unique_ptr<Detector> {
        throw std::runtime_error("detector exploded");
      },
      "Boom");
  AnalysisSession S(Cfg);
  ASSERT_TRUE(S.feedTrace(T).ok());
  AnalysisResult R = S.finish();
  ASSERT_EQ(R.Lanes.size(), 2u);
  EXPECT_TRUE(R.Lanes[0].LaneStatus.ok()) << R.Lanes[0].LaneStatus.str();
  EXPECT_GT(R.Lanes[0].Report.numDistinctPairs(), 0u);
  EXPECT_EQ(R.Lanes[1].LaneStatus.Code, StatusCode::AnalysisError);
  EXPECT_NE(R.Lanes[1].LaneStatus.Message.find("detector exploded"),
            std::string::npos);
  EXPECT_EQ(R.Lanes[1].DetectorName, "Boom");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.firstError().Code, StatusCode::AnalysisError);
}
