# tests/CheckRaceCliTrace.cmake - Validate --trace-out timeline output.
#
# Part of rapidpp (PLDI'17 WCP reproduction).
#
# Writes a small racy text trace, streams it through race_cli with
# --window 2 and --trace-out, then parses the emitted Chrome/Perfetto
# trace_event JSON with string(JSON ...): the file must be valid JSON
# with a traceEvents array, thread_name metadata for the ingest track,
# each lane track and at least one pool worker track, at least one
# "ph":"X" duration span on every lane track, and sane (non-negative)
# ts/dur on every span. Invoked by the race_cli_trace_out ctest;
# requires -DRACE_CLI=<path-to-binary>.

cmake_minimum_required(VERSION 3.19) # string(JSON), IN_LIST semantics

if(NOT RACE_CLI)
  message(FATAL_ERROR "pass -DRACE_CLI=<path to race_cli>")
endif()

# Two unsynchronized writes to x (a race), plus a lock-protected pair on
# y — enough events for four 2-event windows per lane.
set(TRACE "${CMAKE_CURRENT_BINARY_DIR}/trace_out_case.txt")
set(TIMELINE "${CMAKE_CURRENT_BINARY_DIR}/trace_out_case.timeline.json")
file(WRITE ${TRACE}
"T0|w(x)|L1
T1|w(x)|L2
T0|acq(l)|L3
T0|w(y)|L4
T0|rel(l)|L5
T1|acq(l)|L6
T1|w(y)|L7
T1|rel(l)|L8
")

execute_process(
  COMMAND ${RACE_CLI} ${TRACE} --stream --window 2 --hb --wcp
          --trace-out ${TIMELINE} --json
  OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "race_cli exited ${RC}: ${ERR}")
endif()
if(NOT EXISTS ${TIMELINE})
  message(FATAL_ERROR "--trace-out did not write ${TIMELINE}")
endif()
file(READ ${TIMELINE} TL)

string(JSON UNIT ERROR_VARIABLE JERR GET "${TL}" displayTimeUnit)
if(JERR)
  message(FATAL_ERROR "timeline is not valid JSON (${JERR})")
endif()
if(NOT UNIT STREQUAL "ms")
  message(FATAL_ERROR "displayTimeUnit = '${UNIT}', want 'ms'")
endif()

string(JSON NEV LENGTH "${TL}" traceEvents)
if(NOT NEV GREATER 0)
  message(FATAL_ERROR "traceEvents is empty")
endif()

# Pass 1 — metadata: map track names to tids. Pass 2 — spans: count
# "ph":"X" events per tid and range-check ts/dur.
set(TRACK_NAMES "")
math(EXPR LAST "${NEV} - 1")
foreach(I RANGE ${LAST})
  string(JSON PH GET "${TL}" traceEvents ${I} ph)
  if(PH STREQUAL "M")
    string(JSON TNAME GET "${TL}" traceEvents ${I} args name)
    string(JSON TID GET "${TL}" traceEvents ${I} tid)
    list(APPEND TRACK_NAMES "${TNAME}")
    set("TID_${TNAME}" ${TID})
    set("SPANS_${TID}" 0)
  endif()
endforeach()
foreach(I RANGE ${LAST})
  string(JSON PH GET "${TL}" traceEvents ${I} ph)
  if(PH STREQUAL "X")
    string(JSON TID GET "${TL}" traceEvents ${I} tid)
    string(JSON TS GET "${TL}" traceEvents ${I} ts)
    string(JSON DUR GET "${TL}" traceEvents ${I} dur)
    if(TS LESS 0 OR DUR LESS 0)
      message(FATAL_ERROR "span ${I}: ts=${TS} dur=${DUR}, want >= 0")
    endif()
    math(EXPR N "${SPANS_${TID}} + 1")
    set("SPANS_${TID}" ${N})
  endif()
endforeach()

# The streaming stages must all have tracks: ingest, the window builder,
# one per lane, and at least one pool worker.
foreach(WANT "ingest" "window-builder" "lane:HB" "lane:WCP")
  if(NOT WANT IN_LIST TRACK_NAMES)
    message(FATAL_ERROR "no '${WANT}' track (tracks: ${TRACK_NAMES})")
  endif()
endforeach()
if(NOT TRACK_NAMES MATCHES "pool:worker")
  message(FATAL_ERROR "no pool worker track (tracks: ${TRACK_NAMES})")
endif()

# Every active lane recorded at least one window-check span.
foreach(LANE "lane:HB" "lane:WCP")
  set(TID "${TID_${LANE}}")
  if(NOT SPANS_${TID} GREATER 0)
    message(FATAL_ERROR "'${LANE}' track has no spans")
  endif()
endforeach()

file(REMOVE ${TRACE} ${TIMELINE})
list(LENGTH TRACK_NAMES NTRACKS)
message(STATUS "race_cli --trace-out: valid (${NEV} events, ${NTRACKS} "
        "tracks)")
