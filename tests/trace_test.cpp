//===- tests/trace_test.cpp - Trace model, builder, validator ----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/PaperTraces.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "trace/Window.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(EventTest, ConflictRequiresCrossThreadAndAWrite) {
  TraceBuilder B;
  B.write("t1", "x").read("t2", "x").read("t1", "x").write("t1", "y");
  Trace T = B.take();
  const Event &W1 = T.event(0), &R2 = T.event(1), &R1 = T.event(2),
              &WY = T.event(3);
  EXPECT_TRUE(Event::conflicting(W1, R2));
  EXPECT_FALSE(Event::conflicting(W1, R1)) << "same thread";
  EXPECT_FALSE(Event::conflicting(R2, R1)) << "two reads";
  EXPECT_FALSE(Event::conflicting(R2, WY)) << "different variables";
}

TEST(EventTest, KindNamesRoundTrip) {
  EXPECT_STREQ(eventKindName(EventKind::Read), "r");
  EXPECT_STREQ(eventKindName(EventKind::Write), "w");
  EXPECT_STREQ(eventKindName(EventKind::Acquire), "acq");
  EXPECT_STREQ(eventKindName(EventKind::Release), "rel");
  EXPECT_STREQ(eventKindName(EventKind::Fork), "fork");
  EXPECT_STREQ(eventKindName(EventKind::Join), "join");
}

TEST(TraceBuilderTest, InternsNamesDensely) {
  TraceBuilder B;
  B.acquire("t1", "l").read("t1", "x").release("t1", "l");
  B.acquire("t2", "l").write("t2", "x").release("t2", "l");
  Trace T = B.take();
  EXPECT_EQ(T.numThreads(), 2u);
  EXPECT_EQ(T.numLocks(), 1u);
  EXPECT_EQ(T.numVars(), 1u);
  EXPECT_EQ(T.size(), 6u);
  EXPECT_EQ(T.threadName(ThreadId(0)), "t1");
  EXPECT_EQ(T.lockName(LockId(0)), "l");
}

TEST(TraceBuilderTest, SyncShorthandExpandsToFourEvents) {
  TraceBuilder B;
  B.sync("t1", "m");
  Trace T = B.take();
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T.event(0).Kind, EventKind::Acquire);
  EXPECT_EQ(T.event(1).Kind, EventKind::Read);
  EXPECT_EQ(T.event(2).Kind, EventKind::Write);
  EXPECT_EQ(T.event(3).Kind, EventKind::Release);
  EXPECT_EQ(T.varName(T.event(1).var()), "mVar");
}

TEST(TraceBuilderTest, DefaultLocationsAreUniquePerEvent) {
  TraceBuilder B;
  B.read("t1", "x").read("t1", "x");
  Trace T = B.take();
  EXPECT_NE(T.event(0).Loc, T.event(1).Loc);
}

TEST(TraceTest, ThreadProjectionPreservesOrder) {
  TraceBuilder B;
  B.read("t1", "x").read("t2", "x").write("t1", "y").write("t2", "y");
  Trace T = B.take();
  std::vector<EventIdx> P1 = T.threadProjection(ThreadId(0));
  ASSERT_EQ(P1.size(), 2u);
  EXPECT_EQ(P1[0], 0u);
  EXPECT_EQ(P1[1], 2u);
}

TEST(ValidatorTest, AcceptsPaperFigures) {
  for (const PaperTrace &P : allPaperTraces())
    EXPECT_TRUE(validateTrace(P.T).ok()) << P.Name;
}

TEST(ValidatorTest, RejectsOverlappingCriticalSections) {
  TraceBuilder B;
  B.acquire("t1", "l").acquire("t2", "l");
  Trace T = B.take();
  ValidationResult V = validateTrace(T);
  ASSERT_FALSE(V.ok());
  EXPECT_NE(V.str().find("lock semantics"), std::string::npos);
}

TEST(ValidatorTest, RejectsReleaseWithoutHold) {
  TraceBuilder B;
  B.release("t1", "l");
  EXPECT_FALSE(validateTrace(B.take()).ok());
}

TEST(ValidatorTest, RejectsReleaseByNonHolder) {
  TraceBuilder B;
  B.acquire("t1", "l").release("t2", "l");
  EXPECT_FALSE(validateTrace(B.take()).ok());
}

TEST(ValidatorTest, AllowsHandOverHandLocking) {
  // The paper's Figure 6 idiom: acq(l0) acq(m) rel(l0) ... rel(m).
  TraceBuilder B;
  B.acquire("t1", "l0").acquire("t1", "m").release("t1", "l0").release("t1",
                                                                       "m");
  Trace T = B.take();
  EXPECT_TRUE(validateTrace(T).ok());
  EXPECT_FALSE(isWellNested(T));
}

TEST(ValidatorTest, WellNestedProbe) {
  TraceBuilder B;
  B.acquire("t1", "l0").acquire("t1", "m").release("t1", "m").release("t1",
                                                                      "l0");
  EXPECT_TRUE(isWellNested(B.take()));
}

TEST(ValidatorTest, RejectsDoubleFork) {
  TraceBuilder B;
  B.fork("t1", "t2").fork("t1", "t2");
  EXPECT_FALSE(validateTrace(B.take()).ok());
}

TEST(ValidatorTest, RejectsEventAfterJoin) {
  TraceBuilder B;
  B.fork("t1", "t2").read("t2", "x").join("t1", "t2").read("t2", "x");
  EXPECT_FALSE(validateTrace(B.take()).ok());
}

TEST(ValidatorTest, RejectsChildRunningBeforeFork) {
  TraceBuilder B;
  B.declareThread("t1");
  B.read("t2", "x").fork("t1", "t2");
  EXPECT_FALSE(validateTrace(B.take()).ok());
}

TEST(ValidatorTest, OpenSectionPolicy) {
  TraceBuilder B;
  B.acquire("t1", "l").read("t1", "x");
  Trace T = B.take();
  EXPECT_TRUE(validateTrace(T, /*RequireClosedSections=*/false).ok());
  EXPECT_FALSE(validateTrace(T, /*RequireClosedSections=*/true).ok());
}

TEST(StatsTest, CountsEventMix) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.acquire("t1", "l").read("t1", "x").write("t1", "x").release("t1", "l");
  B.acquire("t2", "m").acquire("t2", "l").release("t2", "l").release("t2",
                                                                     "m");
  B.join("t1", "t2");
  Trace T = B.take();
  TraceStats S = computeStats(T);
  EXPECT_EQ(S.NumEvents, 10u);
  EXPECT_EQ(S.NumReads, 1u);
  EXPECT_EQ(S.NumWrites, 1u);
  EXPECT_EQ(S.NumAcquires, 3u);
  EXPECT_EQ(S.NumReleases, 3u);
  EXPECT_EQ(S.NumForks, 1u);
  EXPECT_EQ(S.NumJoins, 1u);
  EXPECT_EQ(S.NumCriticalSections, 3u);
  EXPECT_EQ(S.MaxLockNesting, 2u);
  EXPECT_FALSE(S.str().empty());
}

TEST(WindowTest, SplitsIntoBoundedFragments) {
  TraceBuilder B;
  for (int I = 0; I < 10; ++I)
    B.write("t1", "x", "w");
  Trace T = B.take();
  std::vector<TraceWindow> W = splitIntoWindows(T, 4);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[0].Fragment.size(), 4u);
  EXPECT_EQ(W[2].Fragment.size(), 2u);
  EXPECT_EQ(W[1].Original[0], 4u);
}

TEST(WindowTest, ReplaysHeldAcquiresAtWindowStart) {
  TraceBuilder B;
  B.acquire("t1", "l").read("t1", "x").release("t1", "l").read("t1", "y");
  Trace T = B.take();
  // Window size 2: the boundary cuts the critical section, so the second
  // fragment re-establishes the held lock by replaying the acquire:
  // [acq(l), rel(l), r(y)] — otherwise the section tail would look
  // unprotected and windowed analyses would invent races.
  std::vector<TraceWindow> W = splitIntoWindows(T, 2);
  ASSERT_EQ(W.size(), 2u);
  ASSERT_EQ(W[1].Fragment.size(), 3u);
  EXPECT_EQ(W[1].Fragment.event(0).Kind, EventKind::Acquire);
  EXPECT_EQ(W[1].Original[0], 0u) << "replayed acquire maps to original";
  EXPECT_EQ(W[1].Fragment.event(1).Kind, EventKind::Release);
  // Every fragment is itself a valid trace.
  for (const TraceWindow &Win : W)
    EXPECT_TRUE(validateTrace(Win.Fragment).ok());
}

TEST(WindowTest, WindowedCountersStayRaceFree) {
  // Lock-protected accesses must stay race-free under any window size.
  TraceBuilder B;
  for (int I = 0; I < 12; ++I) {
    const char *T = I % 2 ? "t1" : "t2";
    B.acquire(T, "l").read(T, "c").write(T, "c").release(T, "l");
  }
  Trace T = B.take();
  for (uint64_t WS : {3u, 5u, 7u}) {
    for (TraceWindow &Win : splitIntoWindows(T, WS))
      EXPECT_TRUE(validateTrace(Win.Fragment).ok()) << "ws=" << WS;
  }
}

TEST(WindowTest, FragmentsShareParentIdTables) {
  TraceBuilder B;
  B.write("t1", "x", "locA").write("t2", "x", "locB");
  Trace T = B.take();
  std::vector<TraceWindow> W = splitIntoWindows(T, 1);
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0].Fragment.numLocs(), T.numLocs());
  EXPECT_EQ(W[1].Fragment.locName(W[1].Fragment.event(0).Loc), "locB");
}
