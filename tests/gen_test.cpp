//===- tests/gen_test.cpp - Simulator & workload suite ------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/ProgramSim.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "io/TextFormat.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

using namespace rapid;

TEST(ProgramSimTest, RunsASimpleProgram) {
  Program P;
  ThreadScript(P, "T0").acq("l").write("x").rel("l");
  ThreadScript(P, "T1").acq("l").read("x").rel("l");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.size(), 6u);
  EXPECT_TRUE(validateTrace(R.T, /*RequireClosedSections=*/true).ok());
}

TEST(ProgramSimTest, TicketsForceTraceOrderWithoutEvents) {
  Program P;
  ThreadScript(P, "T0").await("go").write("x", "after");
  ThreadScript(P, "T1").write("x", "before").post("go");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.T.size(), 2u) << "tickets must not emit events";
  EXPECT_EQ(R.T.locName(R.T.event(0).Loc), "before");
  EXPECT_EQ(R.T.locName(R.T.event(1).Loc), "after");
}

TEST(ProgramSimTest, ForkJoinSemantics) {
  Program P;
  ThreadScript(P, "T0").fork("T1").write("x").join("T1").write("y");
  ThreadScript(P, "T1").write("x");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(validateTrace(R.T).ok());
  // Join must come after the child's last event.
  EventIdx JoinIdx = 0, ChildLast = 0;
  for (EventIdx I = 0; I != R.T.size(); ++I) {
    if (R.T.event(I).Kind == EventKind::Join)
      JoinIdx = I;
    if (R.T.event(I).Thread == ThreadId(1))
      ChildLast = I;
  }
  EXPECT_GT(JoinIdx, ChildLast);
}

TEST(ProgramSimTest, ReportsStuckPrograms) {
  Program P;
  ThreadScript(P, "T0").await("never");
  SimResult R = simulate(P);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("stuck"), std::string::npos);
}

TEST(ProgramSimTest, ReportsUnknownForkTarget) {
  Program P;
  ThreadScript(P, "T0").fork("ghost");
  EXPECT_FALSE(simulate(P).Ok);
}

TEST(ProgramSimTest, DeterministicPerSeed) {
  RandomTraceParams Params;
  Params.Seed = 17;
  Trace A = randomTrace(Params);
  Trace B = randomTrace(Params);
  ASSERT_EQ(A.size(), B.size());
  for (EventIdx I = 0; I != A.size(); ++I)
    EXPECT_EQ(A.eventStr(I), B.eventStr(I));
}

TEST(RandomTraceTest, AlwaysValid) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomTraceParams Params;
    Params.Seed = Seed;
    Params.NumThreads = 2 + Seed % 5;
    Params.WithForkJoin = Seed % 2;
    Trace T = randomTrace(Params);
    ValidationResult V =
        validateTrace(T, /*RequireClosedSections=*/true);
    EXPECT_TRUE(V.ok()) << "seed " << Seed << "\n" << V.str();
  }
}

// ---- Workload suite ---------------------------------------------------------

class WorkloadTest : public ::testing::TestWithParam<WorkloadSpec> {};

TEST_P(WorkloadTest, ProducesAValidTrace) {
  const WorkloadSpec &Spec = GetParam();
  // Use a small scale so the whole suite stays fast.
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  ValidationResult V = validateTrace(T, /*RequireClosedSections=*/true);
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST_P(WorkloadTest, PlantedRaceCountsAreExact) {
  const WorkloadSpec &Spec = GetParam();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  RaceReport Hb = testutil::run<HbDetector>(T);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  EXPECT_EQ(Hb.numDistinctPairs(), Spec.expectedHbPairs())
      << "HB pairs:\n" << Hb.str(T);
  EXPECT_EQ(Wcp.numDistinctPairs(), Spec.expectedWcpPairs())
      << "WCP pairs:\n" << Wcp.str(T);
  // The paper's boldfaced rows: WCP strictly exceeds HB iff the model
  // plants WCP-only gadgets.
  if (Spec.WcpOnlyRaces > 0)
    EXPECT_GT(Wcp.numDistinctPairs(), Hb.numDistinctPairs());
  else
    EXPECT_EQ(Wcp.numDistinctPairs(), Hb.numDistinctPairs());
}

TEST_P(WorkloadTest, ShapeRoughlyMatchesTable1) {
  const WorkloadSpec &Spec = GetParam();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  TraceStats S = computeStats(T);
  EXPECT_EQ(S.NumThreads, Spec.Threads);
  // Lock count: within 2% of the Table 1 target (rounding in the split
  // between global and per-thread pools).
  EXPECT_NEAR(static_cast<double>(S.NumLocks),
              static_cast<double>(Spec.Locks),
              std::max(2.0, 0.02 * Spec.Locks));
  // Event count lands in the right ballpark of the (scaled) target. Lock
  // fidelity dominates at tiny scales: every lock must be exercised at
  // least once (~4.5 events per lock), which floors the event count.
  uint64_t Target = static_cast<uint64_t>(Spec.Events * Scale);
  double Floor = 4.5 * Spec.Locks;
  if (Target > 200) {
    EXPECT_GE(static_cast<double>(S.NumEvents), 0.4 * Target);
    EXPECT_LE(static_cast<double>(S.NumEvents),
              std::max(2.0 * Target, 1.5 * Floor));
  }
}

TEST_P(WorkloadTest, FarRacesAreFarApart) {
  const WorkloadSpec &Spec = GetParam();
  if (Spec.FarRaces == 0)
    GTEST_SKIP();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  // At least FarRaces distinct pairs span a third of the trace (§4.3's
  // "distance of millions of events", scaled).
  EXPECT_GE(Wcp.numPairsWithDistanceAtLeast(T.size() / 3), Spec.FarRaces)
      << "max distance " << Wcp.maxPairDistance() << " of " << T.size();
}

INSTANTIATE_TEST_SUITE_P(Table1, WorkloadTest,
                         ::testing::ValuesIn(table1Workloads()),
                         [](const ::testing::TestParamInfo<WorkloadSpec> &I) {
                           return I.param.Name;
                         });

TEST(WorkloadLookupTest, FindsByName) {
  EXPECT_EQ(workloadSpec("eclipse").Threads, 14u);
  EXPECT_EQ(workloadSpec("xalan").Locks, 2494u);
  EXPECT_EQ(table1Workloads().size(), 18u);
}

TEST(WorkloadScalingTest, ScaleControlsEventCount) {
  WorkloadSpec Spec = workloadSpec("moldyn");
  Trace Small = makeWorkload(Spec, 0.02);
  Trace Large = makeWorkload(Spec, 0.08);
  EXPECT_GT(Large.size(), 2 * Small.size());
}

// ---- Zipf skew model ------------------------------------------------------

TEST(ZipfSamplerTest, DeterministicAndInRange) {
  ZipfSampler Z(1000, 0.9);
  Prng A(7), B(7);
  for (int I = 0; I < 5000; ++I) {
    uint64_t X = Z.sample(A);
    EXPECT_EQ(X, Z.sample(B));
    EXPECT_LT(X, 1000u);
  }
}

TEST(ZipfSamplerTest, ThetaControlsSkew) {
  // At theta 0.9 the hottest rank must dominate; at theta 0 (uniform) it
  // must not. Use the same draw count so the two runs are comparable.
  const int Draws = 20000;
  auto hotShare = [&](double Theta) {
    ZipfSampler Z(256, Theta);
    Prng Rng(11);
    int Hot = 0;
    for (int I = 0; I < Draws; ++I)
      if (Z.sample(Rng) == 0)
        ++Hot;
    return static_cast<double>(Hot) / Draws;
  };
  // Exact expectations: uniform puts 1/256 ~ 0.4% on rank 0; Zipf(0.9)
  // over 256 ranks puts ~17% there. Generous slack on both sides.
  EXPECT_LT(hotShare(0.0), 0.02);
  EXPECT_GT(hotShare(0.9), 0.10);
}

TEST(ZipfWorkloadTest, ValidDeterministicAndSkewed) {
  ZipfWorkloadSpec Spec;
  Spec.Events = 20000;
  Trace T = makeZipfWorkload(Spec);
  EXPECT_TRUE(validateTrace(T, /*RequireClosedSections=*/true).ok());
  EXPECT_GE(T.size(), Spec.Events / 2);

  // Bit-for-bit deterministic per seed, different across seeds.
  EXPECT_EQ(writeTextTrace(T), writeTextTrace(makeZipfWorkload(Spec)));
  ZipfWorkloadSpec Other = Spec;
  Other.Seed = 2;
  EXPECT_NE(writeTextTrace(T), writeTextTrace(makeZipfWorkload(Other)));

  // The skew must survive into the trace: the hottest variable sees many
  // times the accesses of the median one.
  std::vector<uint64_t> Hits(T.numVars(), 0);
  for (const Event &E : T.events())
    if (isAccess(E.Kind))
      ++Hits[E.var().value()];
  std::vector<uint64_t> Sorted = Hits;
  std::sort(Sorted.begin(), Sorted.end(), std::greater<uint64_t>());
  ASSERT_GE(Sorted.size(), 3u);
  EXPECT_GT(Sorted[0], 8 * std::max<uint64_t>(1, Sorted[Sorted.size() / 2]));
}

TEST(ZipfWorkloadTest, UnstripedVariantRaces) {
  // Locks = 0 drops the stripes: the hot variable is hammered from every
  // thread with no protection, so HB must flag it.
  ZipfWorkloadSpec Spec;
  Spec.Events = 4000;
  Spec.Locks = 0;
  Trace T = makeZipfWorkload(Spec);
  ASSERT_TRUE(validateTrace(T, /*RequireClosedSections=*/true).ok());
  RaceReport Hb = testutil::run<HbDetector>(T);
  EXPECT_GT(Hb.numDistinctPairs(), 0u);
}

// ---- Adversarial workload matrix ------------------------------------------

TEST(ZipfSamplerTest, ExactTablePathDeterministicAndInRange) {
  // theta >= 1 leaves Gray's closed-form domain and switches to the exact
  // cumulative table; it must stay bit-for-bit deterministic per seed.
  ZipfSampler Z(512, 1.2);
  Prng A(7), B(7);
  for (int I = 0; I < 5000; ++I) {
    uint64_t X = Z.sample(A);
    EXPECT_EQ(X, Z.sample(B));
    EXPECT_LT(X, 512u);
  }
}

TEST(ZipfSamplerTest, HigherThetaIsStrictlyHotter) {
  const int Draws = 20000;
  auto hotShare = [&](double Theta) {
    ZipfSampler Z(256, Theta);
    Prng Rng(11);
    int Hot = 0;
    for (int I = 0; I < Draws; ++I)
      if (Z.sample(Rng) == 0)
        ++Hot;
    return static_cast<double>(Hot) / Draws;
  };
  // Zipf(1.2) over 256 ranks puts ~40% of the mass on rank 0, Zipf(0.6)
  // ~7% — the sweep must actually move the skew.
  double Light = hotShare(0.6), Heavy = hotShare(1.2);
  EXPECT_GT(Heavy, Light + 0.10);
  EXPECT_GT(Heavy, 0.25);
}

class ShapeTest : public ::testing::TestWithParam<WorkloadShape> {};

TEST_P(ShapeTest, ValidAndDeterministicAcrossSeeds) {
  for (uint64_t Seed : {1, 2, 3, 9}) {
    Trace T = makeAdversarialTrace(GetParam(), Seed);
    ASSERT_GT(T.size(), 0u)
        << workloadShapeName(GetParam()) << " seed " << Seed;
    ValidationResult V = validateTrace(T, /*RequireClosedSections=*/true);
    EXPECT_TRUE(V.ok()) << workloadShapeName(GetParam()) << " seed " << Seed
                        << ": " << V.str();
    EXPECT_EQ(writeTextTrace(T),
              writeTextTrace(makeAdversarialTrace(GetParam(), Seed)))
        << workloadShapeName(GetParam()) << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShapeTest, ::testing::ValuesIn(allWorkloadShapes()),
    [](const ::testing::TestParamInfo<WorkloadShape> &Info) {
      std::string Name = workloadShapeName(Info.param);
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(ShapeMatrixTest, CoversEveryDeclaredShape) {
  const std::vector<WorkloadShape> &All = allWorkloadShapes();
  ASSERT_EQ(All.size(), 7u);
  std::set<std::string> Names;
  for (WorkloadShape S : All)
    Names.insert(workloadShapeName(S));
  EXPECT_EQ(Names.size(), All.size()) << "shape names must be distinct";
  EXPECT_TRUE(Names.count("zipf-1.2"));
  EXPECT_TRUE(Names.count("decl-dense"));
}

TEST(ShapeMatrixTest, DeclarationDenseDeclaresUntilTheEnd) {
  // The whole point of the shape: thread and variable ids keep appearing
  // deep into the trace, so streaming analyses must grow mid-flight.
  Trace T = makeAdversarialTrace(WorkloadShape::DeclarationDense, 3);
  EventIdx LastNewThread = 0, LastNewVar = 0;
  std::set<uint32_t> Threads, Vars;
  for (EventIdx I = 0; I != T.size(); ++I) {
    const Event &E = T.event(I);
    if (Threads.insert(E.Thread.value()).second)
      LastNewThread = I;
    if (isAccess(E.Kind) && Vars.insert(E.var().value()).second)
      LastNewVar = I;
  }
  EXPECT_GT(LastNewThread, T.size() / 3);
  EXPECT_GT(LastNewVar, (3 * T.size()) / 4);
}

// ---- Pathological WCP queue growth ----------------------------------------

TEST(WcpQueueStressTest, ValidDeterministicWithALateThread) {
  WcpQueueStressSpec Spec;
  Trace T = makeWcpQueueStress(Spec);
  ASSERT_TRUE(validateTrace(T, /*RequireClosedSections=*/true).ok());
  EXPECT_EQ(writeTextTrace(T), writeTextTrace(makeWcpQueueStress(Spec)));
  ASSERT_EQ(T.numThreads(), 3u);

  // The third thread must really be a mid-stream declaration: its first
  // event (its fork) sits past the first third of the trace.
  EventIdx FirstLate = 0;
  std::set<uint32_t> Seen;
  for (EventIdx I = 0; I != T.size() && Seen.size() < 3; ++I)
    if (Seen.insert(T.event(I).Thread.value()).second)
      FirstLate = I;
  EXPECT_EQ(Seen.size(), 3u);
  EXPECT_GT(FirstLate, T.size() / 4);
}

TEST(WcpQueueStressTest, QueueGcHoldsThePeakDown) {
  // Regression pin for WcpDetector::collectLockGarbage: this trace is the
  // adversarial pattern for the per-lock queues (deep nesting + flat
  // release chains + a late conflicting thread). Without GC the shared
  // buffer retains one entry per critical section until the end — hundreds
  // here. With GC the live peak stays around the nesting depth times the
  // thread count.
  WcpQueueStressSpec Spec;
  Spec.Chains = 8;
  Spec.ChainLocks = 16;
  Trace T = makeWcpQueueStress(Spec);
  ASSERT_TRUE(validateTrace(T, /*RequireClosedSections=*/true).ok());

  WcpDetector D(T);
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);

  uint64_t Sections = 0;
  for (const Event &E : T.events())
    if (E.Kind == EventKind::Release)
      ++Sections;
  ASSERT_GT(Sections, 100u) << "stress trace lost its lock traffic";
  const WcpStats &S = D.stats();
  EXPECT_GT(S.MaxSharedQueueEntries, 0u);
  EXPECT_LT(S.MaxSharedQueueEntries, Sections / 2)
      << "queue GC regressed: shared queue retains most sections";
}

// ---- Acq/rel-ratio sweep ---------------------------------------------------

TEST(RandomTraceTest, DefaultReleasePercentIsBitStable) {
  // The knob's default must reproduce the generator's historical streams:
  // explicit 25 and the default are the same trace, bit for bit.
  RandomTraceParams A;
  A.Seed = 9;
  RandomTraceParams B = A;
  B.ReleasePercent = 25;
  EXPECT_EQ(writeTextTrace(randomTrace(A)), writeTextTrace(randomTrace(B)));

  for (uint32_t RP : {5u, 50u, 95u}) {
    RandomTraceParams C;
    C.Seed = 9;
    C.ReleasePercent = RP;
    Trace T = randomTrace(C);
    EXPECT_TRUE(validateTrace(T, /*RequireClosedSections=*/true).ok())
        << "ReleasePercent " << RP;
    EXPECT_EQ(writeTextTrace(T), writeTextTrace(randomTrace(C)))
        << "ReleasePercent " << RP;
  }
}

TEST(RandomTraceTest, ReleasePercentControlsSectionLength) {
  // Mean critical-section length, in per-thread events between an acquire
  // and its matching release, must fall as ReleasePercent rises.
  auto meanSectionLength = [](const Trace &T) {
    std::vector<uint64_t> ThreadEvents(T.numThreads(), 0);
    std::vector<std::vector<uint64_t>> Open(T.numThreads());
    uint64_t Sum = 0, Count = 0;
    for (const Event &E : T.events()) {
      uint32_t Tid = E.Thread.value();
      ++ThreadEvents[Tid];
      if (E.Kind == EventKind::Acquire)
        Open[Tid].push_back(ThreadEvents[Tid]);
      else if (E.Kind == EventKind::Release) {
        Sum += ThreadEvents[Tid] - Open[Tid].back();
        Open[Tid].pop_back();
        ++Count;
      }
    }
    return Count ? static_cast<double>(Sum) / Count : 0.0;
  };
  RandomTraceParams P;
  P.Seed = 5;
  P.OpsPerThread = 400;
  P.AcquirePercent = 30;
  P.MaxLockNesting = 1;
  P.ReleasePercent = 5;
  double Long = meanSectionLength(randomTrace(P));
  P.ReleasePercent = 80;
  double Short = meanSectionLength(randomTrace(P));
  EXPECT_GT(Short, 0.0);
  EXPECT_GT(Long, 2.0 * Short)
      << "long-section run " << Long << " vs short-section run " << Short;
}
