//===- tests/gen_test.cpp - Simulator & workload suite ------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/ProgramSim.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/HbDetector.h"
#include "trace/TraceStats.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(ProgramSimTest, RunsASimpleProgram) {
  Program P;
  ThreadScript(P, "T0").acq("l").write("x").rel("l");
  ThreadScript(P, "T1").acq("l").read("x").rel("l");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.T.size(), 6u);
  EXPECT_TRUE(validateTrace(R.T, /*RequireClosedSections=*/true).ok());
}

TEST(ProgramSimTest, TicketsForceTraceOrderWithoutEvents) {
  Program P;
  ThreadScript(P, "T0").await("go").write("x", "after");
  ThreadScript(P, "T1").write("x", "before").post("go");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.T.size(), 2u) << "tickets must not emit events";
  EXPECT_EQ(R.T.locName(R.T.event(0).Loc), "before");
  EXPECT_EQ(R.T.locName(R.T.event(1).Loc), "after");
}

TEST(ProgramSimTest, ForkJoinSemantics) {
  Program P;
  ThreadScript(P, "T0").fork("T1").write("x").join("T1").write("y");
  ThreadScript(P, "T1").write("x");
  SimResult R = simulate(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(validateTrace(R.T).ok());
  // Join must come after the child's last event.
  EventIdx JoinIdx = 0, ChildLast = 0;
  for (EventIdx I = 0; I != R.T.size(); ++I) {
    if (R.T.event(I).Kind == EventKind::Join)
      JoinIdx = I;
    if (R.T.event(I).Thread == ThreadId(1))
      ChildLast = I;
  }
  EXPECT_GT(JoinIdx, ChildLast);
}

TEST(ProgramSimTest, ReportsStuckPrograms) {
  Program P;
  ThreadScript(P, "T0").await("never");
  SimResult R = simulate(P);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("stuck"), std::string::npos);
}

TEST(ProgramSimTest, ReportsUnknownForkTarget) {
  Program P;
  ThreadScript(P, "T0").fork("ghost");
  EXPECT_FALSE(simulate(P).Ok);
}

TEST(ProgramSimTest, DeterministicPerSeed) {
  RandomTraceParams Params;
  Params.Seed = 17;
  Trace A = randomTrace(Params);
  Trace B = randomTrace(Params);
  ASSERT_EQ(A.size(), B.size());
  for (EventIdx I = 0; I != A.size(); ++I)
    EXPECT_EQ(A.eventStr(I), B.eventStr(I));
}

TEST(RandomTraceTest, AlwaysValid) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomTraceParams Params;
    Params.Seed = Seed;
    Params.NumThreads = 2 + Seed % 5;
    Params.WithForkJoin = Seed % 2;
    Trace T = randomTrace(Params);
    ValidationResult V =
        validateTrace(T, /*RequireClosedSections=*/true);
    EXPECT_TRUE(V.ok()) << "seed " << Seed << "\n" << V.str();
  }
}

// ---- Workload suite ---------------------------------------------------------

class WorkloadTest : public ::testing::TestWithParam<WorkloadSpec> {};

TEST_P(WorkloadTest, ProducesAValidTrace) {
  const WorkloadSpec &Spec = GetParam();
  // Use a small scale so the whole suite stays fast.
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  ValidationResult V = validateTrace(T, /*RequireClosedSections=*/true);
  EXPECT_TRUE(V.ok()) << V.str();
}

TEST_P(WorkloadTest, PlantedRaceCountsAreExact) {
  const WorkloadSpec &Spec = GetParam();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  RaceReport Hb = testutil::run<HbDetector>(T);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  EXPECT_EQ(Hb.numDistinctPairs(), Spec.expectedHbPairs())
      << "HB pairs:\n" << Hb.str(T);
  EXPECT_EQ(Wcp.numDistinctPairs(), Spec.expectedWcpPairs())
      << "WCP pairs:\n" << Wcp.str(T);
  // The paper's boldfaced rows: WCP strictly exceeds HB iff the model
  // plants WCP-only gadgets.
  if (Spec.WcpOnlyRaces > 0)
    EXPECT_GT(Wcp.numDistinctPairs(), Hb.numDistinctPairs());
  else
    EXPECT_EQ(Wcp.numDistinctPairs(), Hb.numDistinctPairs());
}

TEST_P(WorkloadTest, ShapeRoughlyMatchesTable1) {
  const WorkloadSpec &Spec = GetParam();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  TraceStats S = computeStats(T);
  EXPECT_EQ(S.NumThreads, Spec.Threads);
  // Lock count: within 2% of the Table 1 target (rounding in the split
  // between global and per-thread pools).
  EXPECT_NEAR(static_cast<double>(S.NumLocks),
              static_cast<double>(Spec.Locks),
              std::max(2.0, 0.02 * Spec.Locks));
  // Event count lands in the right ballpark of the (scaled) target. Lock
  // fidelity dominates at tiny scales: every lock must be exercised at
  // least once (~4.5 events per lock), which floors the event count.
  uint64_t Target = static_cast<uint64_t>(Spec.Events * Scale);
  double Floor = 4.5 * Spec.Locks;
  if (Target > 200) {
    EXPECT_GE(static_cast<double>(S.NumEvents), 0.4 * Target);
    EXPECT_LE(static_cast<double>(S.NumEvents),
              std::max(2.0 * Target, 1.5 * Floor));
  }
}

TEST_P(WorkloadTest, FarRacesAreFarApart) {
  const WorkloadSpec &Spec = GetParam();
  if (Spec.FarRaces == 0)
    GTEST_SKIP();
  double Scale = Spec.Events > 100000 ? 0.05 : 1.0;
  Trace T = makeWorkload(Spec, Scale);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  // At least FarRaces distinct pairs span a third of the trace (§4.3's
  // "distance of millions of events", scaled).
  EXPECT_GE(Wcp.numPairsWithDistanceAtLeast(T.size() / 3), Spec.FarRaces)
      << "max distance " << Wcp.maxPairDistance() << " of " << T.size();
}

INSTANTIATE_TEST_SUITE_P(Table1, WorkloadTest,
                         ::testing::ValuesIn(table1Workloads()),
                         [](const ::testing::TestParamInfo<WorkloadSpec> &I) {
                           return I.param.Name;
                         });

TEST(WorkloadLookupTest, FindsByName) {
  EXPECT_EQ(workloadSpec("eclipse").Threads, 14u);
  EXPECT_EQ(workloadSpec("xalan").Locks, 2494u);
  EXPECT_EQ(table1Workloads().size(), 18u);
}

TEST(WorkloadScalingTest, ScaleControlsEventCount) {
  WorkloadSpec Spec = workloadSpec("moldyn");
  Trace Small = makeWorkload(Spec, 0.02);
  Trace Large = makeWorkload(Spec, 0.08);
  EXPECT_GT(Large.size(), 2 * Small.size());
}
