//===- tests/mcm_test.cpp - Maximal-causality search ---------------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "mcm/McmSearch.h"
#include "mcm/WindowedPredictor.h"
#include "reference/ClosureEngine.h"
#include "trace/TraceBuilder.h"
#include "verify/Reordering.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(McmTest, FindsTheFig2bRaceWithWitness) {
  PaperTrace P = paperFig2b();
  McmOptions Opts;
  Opts.TrackWitnesses = true;
  McmResult R = exploreMcm(P.T, Opts);
  ASSERT_FALSE(R.BudgetExhausted);
  ASSERT_GE(R.Report.numDistinctPairs(), 1u);
  ASSERT_FALSE(R.RaceWitness.empty());
  ReorderingCheck C = checkRaceWitness(P.T, R.RaceWitness);
  EXPECT_TRUE(C.Ok) << C.Error;
}

TEST(McmTest, Fig2aHasNoPredictableRace) {
  McmResult R = exploreMcm(paperFig2a().T);
  ASSERT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Report.numDistinctPairs(), 0u);
}

TEST(McmTest, ReadMustSeeOriginalWriterInsideThePrefix) {
  // t1: w(x); t2: r(x) then w(y); t1: w(y). The only race is on y, and
  // any witness must schedule t1's w(x) before t2's r(x).
  TraceBuilder B;
  B.write("t1", "x", "wx");
  B.read("t2", "x", "rx");
  B.write("t2", "y", "wy2");
  B.write("t1", "y", "wy1");
  Trace T = testutil::takeValid(B);
  McmOptions Opts;
  Opts.TrackWitnesses = true;
  McmResult R = exploreMcm(T, Opts);
  ASSERT_FALSE(R.BudgetExhausted);
  EXPECT_TRUE(R.Report.hasPair(
      RacePair(T.event(2).Loc, T.event(3).Loc)));
  ASSERT_FALSE(R.RaceWitness.empty());
  EXPECT_TRUE(checkRaceWitness(T, R.RaceWitness).Ok);
}

TEST(McmTest, LockSemanticsConstrainReorderings) {
  // Figure 1a: both accesses protected by the same lock — no race.
  McmResult R = exploreMcm(paperFig1a().T);
  ASSERT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Report.numDistinctPairs(), 0u);
}

TEST(McmTest, BudgetExhaustionIsReported) {
  RandomTraceParams Params;
  Params.Seed = 3;
  Params.NumThreads = 5;
  Params.OpsPerThread = 60;
  Trace T = randomTrace(Params);
  McmOptions Opts;
  Opts.MaxStates = 10;
  McmResult R = exploreMcm(T, Opts);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.StatesExpanded, 10u);
}

TEST(McmTest, TargetPairStopsEarly) {
  PaperTrace P = paperFig2b();
  // Find the y-locations.
  LocId L1, L2;
  for (EventIdx I = 0; I != P.T.size(); ++I) {
    const Event &E = P.T.event(I);
    if (isAccess(E.Kind) && P.T.varName(E.var()) == "y") {
      if (E.Kind == EventKind::Write)
        L1 = E.Loc;
      else
        L2 = E.Loc;
    }
  }
  McmOptions Opts;
  Opts.TrackWitnesses = true;
  Opts.TargetPair = RacePair(L1, L2);
  McmResult R = exploreMcm(P.T, Opts);
  EXPECT_TRUE(R.Report.hasPair(*Opts.TargetPair));
  ASSERT_FALSE(R.RaceWitness.empty());
  // The witness's final pair is the targeted one.
  EXPECT_TRUE(checkRaceWitness(P.T, R.RaceWitness).Ok);
  RacePair Got(P.T.event(R.RaceWitness[R.RaceWitness.size() - 2]).Loc,
               P.T.event(R.RaceWitness.back()).Loc);
  EXPECT_TRUE(Got == *Opts.TargetPair);
}

TEST(McmTest, ForkGatePreventsPrematureChildRaces) {
  // Parent writes g *before* forking the child; the child's write cannot
  // race with it (hard order), and MCM must not claim otherwise.
  TraceBuilder B;
  B.write("t1", "g", "parent");
  B.fork("t1", "t2");
  B.write("t2", "g", "child");
  Trace T = testutil::takeValid(B);
  McmResult R = exploreMcm(T);
  ASSERT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Report.numDistinctPairs(), 0u);
}

TEST(McmTest, JoinOrdersChildBeforeParentContinuation) {
  TraceBuilder B;
  B.fork("t1", "t2");
  B.write("t2", "g", "child");
  B.join("t1", "t2");
  B.write("t1", "g", "parent");
  Trace T = testutil::takeValid(B);
  McmResult R = exploreMcm(T);
  ASSERT_FALSE(R.BudgetExhausted);
  EXPECT_EQ(R.Report.numDistinctPairs(), 0u);
}

// MCM races and partial-order races are *incomparable* at the pair
// level: HB can order a genuinely predictable race (Figure 1b — the
// sections swap), and HB can report a pair that read-value constraints
// make unpredictable. What must hold end-to-end: every pair MCM reports
// has a concrete witness that passes the correct-reordering checker.
class McmVsOrdersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McmVsOrdersTest, EveryMcmPairHasAValidatedWitness) {
  RandomTraceParams Params;
  Params.Seed = GetParam();
  Params.NumThreads = 2 + GetParam() % 2;
  Params.OpsPerThread = 12;
  Params.NumVars = 3;
  Params.NumLocks = 2;
  Trace T = randomTrace(Params);
  McmResult R = exploreMcm(T);
  if (R.BudgetExhausted)
    GTEST_SKIP() << "state space too large for exhaustive check";
  for (const RaceInstance &I : R.Report.instances()) {
    McmOptions Opts;
    Opts.TrackWitnesses = true;
    Opts.TargetPair = I.pair();
    McmResult W = exploreMcm(T, Opts);
    ASSERT_FALSE(W.RaceWitness.empty()) << I.str(T);
    ReorderingCheck C = checkRaceWitness(T, W.RaceWitness);
    EXPECT_TRUE(C.Ok) << I.str(T) << ": " << C.Error;
  }
}

TEST(McmVsOrdersTest, Fig1bShowsMcmExceedsHb) {
  // The paper's motivating example: the y-race is HB-*ordered* yet
  // predictable. MCM reports it; HB cannot.
  PaperTrace P = paperFig1b();
  ClosureEngine Ref(P.T);
  McmResult R = exploreMcm(P.T);
  ASSERT_FALSE(R.BudgetExhausted);
  bool FoundHbOrderedRace = false;
  for (const RaceInstance &I : R.Report.instances())
    if (Ref.ordered(OrderKind::HB, I.EarlierIdx, I.LaterIdx))
      FoundHbOrderedRace = true;
  EXPECT_TRUE(FoundHbOrderedRace);
}

INSTANTIATE_TEST_SUITE_P(Random, McmVsOrdersTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(WindowedPredictorTest, FullWindowEqualsUnwindowed) {
  PaperTrace P = paperFig2b();
  PredictorOptions Opts;
  Opts.WindowSize = P.T.size();
  PredictorResult R = runWindowedPredictor(P.T, Opts);
  EXPECT_EQ(R.NumWindows, 1u);
  EXPECT_GE(R.Report.numDistinctPairs(), 1u);
}

TEST(WindowedPredictorTest, SmallWindowsMissCrossWindowRaces) {
  // Two conflicting accesses 20 events apart; a window of 8 can never see
  // both, a window of 64 sees them.
  TraceBuilder B;
  B.write("t1", "g", "first");
  for (int I = 0; I < 20; ++I)
    B.write("t1", "pad" + std::to_string(I), "pad");
  B.write("t2", "g", "second");
  Trace T = testutil::takeValid(B);

  PredictorOptions Small;
  Small.WindowSize = 8;
  EXPECT_EQ(runWindowedPredictor(T, Small).Report.numDistinctPairs(), 0u);

  PredictorOptions Big;
  Big.WindowSize = 64;
  EXPECT_EQ(runWindowedPredictor(T, Big).Report.numDistinctPairs(), 1u);
}

TEST(WindowedPredictorTest, BudgetExhaustionLosesRaces) {
  // A wide state space plus a tiny budget: the predictor reports
  // exhaustion (and typically misses races) — RVPredict's solver-timeout
  // failure mode.
  RandomTraceParams Params;
  Params.Seed = 11;
  Params.NumThreads = 6;
  Params.OpsPerThread = 40;
  Trace T = randomTrace(Params);
  PredictorOptions Opts;
  Opts.WindowSize = T.size();
  Opts.BudgetPerWindow = 5;
  PredictorResult R = runWindowedPredictor(T, Opts);
  EXPECT_EQ(R.WindowsExhausted, R.NumWindows);
}
