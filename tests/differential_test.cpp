//===- tests/differential_test.cpp - Sharded vs sequential fuzzing ------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The differential harness for the per-variable sharded detection lane
// (detect/ShardedAccessHistory.h). Soundness arguments for predictive
// races are notoriously fragile under reordering — "The Complexity of
// Dynamic Data Race Prediction" and the sync-preserving line of work both
// stress it — so the sharded path is pinned three ways before anything
// builds on it:
//
//   1. differential: seeded random traces (>= 100 per detector), shard
//      counts {1, 2, 4, 8}, each sharded report bit-identical (pairs,
//      witness indices, discovery order, distances) to the sequential
//      detector's;
//   2. oracle: sharded HB findings cross-checked against the declarative
//      reference/ClosureEngine on small traces — every reported instance
//      is a true HB race, and the any-race verdicts agree;
//   3. internals: the clock broadcast dedups, the shard plan partitions.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "detect/ShardedAccessHistory.h"
#include "gen/RandomTraceGen.h"
#include "gen/Workloads.h"
#include "hb/FastTrackDetector.h"
#include "hb/HbDetector.h"
#include "pipeline/Pipeline.h"
#include "reference/ClosureEngine.h"
#include "syncp/SyncPDetector.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

using namespace rapid;

namespace {

constexpr uint32_t kShardCounts[] = {1, 2, 4, 8};

/// Varied trace shapes: thread, lock, variable and op counts all cycle
/// with the seed so the 100-round sweep covers skinny and wide traces.
RandomTraceParams fuzzParams(uint64_t Seed, bool ForkJoin) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 5;        // 2..6 threads
  P.NumLocks = 1 + Seed % 4;          // 1..4 locks
  P.NumVars = 1 + (Seed * 3) % 9;     // 1..9 vars (1 var: all-one-shard)
  P.OpsPerThread = 25 + (Seed * 11) % 50;
  P.MaxLockNesting = 1 + Seed % 3;
  P.AcquirePercent = 10 + (Seed * 5) % 25;
  P.WritePercent = 30 + (Seed * 13) % 40;
  P.WithForkJoin = ForkJoin;
  return P;
}

using testutil::expectSameReport;

/// One differential round: sequential oracle vs every shard count.
/// Bit-for-bit comparison via testutil::expectSameReport.
void expectShardedMatchesSequential(const DetectorFactory &Make,
                                    const Trace &T,
                                    const std::string &Label) {
  std::unique_ptr<Detector> D = Make(T);
  RunResult Want = runDetector(*D, T);
  for (uint32_t N : kShardCounts) {
    RunResult Got = runDetectorSharded(Make, T, N, /*NumThreads=*/2);
    ASSERT_TRUE(Got.Error.empty()) << Label << ": " << Got.Error;
    // Var-sharding loses nothing, so the lane keeps the plain name — no
    // "[w=...]"-style marker distinguishing it from the sequential run.
    EXPECT_EQ(Got.DetectorName, Want.DetectorName) << Label;
    expectSameReport(Got.Report, Want.Report, T,
                     Label + " shards=" + std::to_string(N));
  }
}

class DifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

// ---- Sharded vs sequential, bit for bit -------------------------------------

// 50 seeds x {no-forkjoin, forkjoin} = 100 distinct traces per detector,
// each checked at shard counts {1, 2, 4, 8}.
TEST_P(DifferentialFuzzTest, ShardedHbMatchesSequentialBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam(), ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    expectShardedMatchesSequential(
        [](const Trace &F) { return std::make_unique<HbDetector>(F); }, T,
        "HB seed " + std::to_string(GetParam()) + " fj=" +
            std::to_string(ForkJoin));
  }
}

TEST_P(DifferentialFuzzTest, ShardedWcpMatchesSequentialBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam() ^ 0x5a5a, ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    expectShardedMatchesSequential(
        [](const Trace &F) { return std::make_unique<WcpDetector>(F); }, T,
        "WCP seed " + std::to_string(GetParam()) + " fj=" +
            std::to_string(ForkJoin));
  }
}

// FastTrack's epoch checks also partition by variable; its capture mode
// defers them into the shard phase's epoch replayer. Same contract, same
// harness: bit-identical to the sequential FastTrack run for any shard
// count (including the epoch-mode shortcuts and the read-vector
// promotions, which now happen inside the shards).
TEST_P(DifferentialFuzzTest, ShardedFastTrackMatchesSequentialBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam() ^ 0x77aa, ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    expectShardedMatchesSequential(
        [](const Trace &F) { return std::make_unique<FastTrackDetector>(F); },
        T,
        "FastTrack seed " + std::to_string(GetParam()) + " fj=" +
            std::to_string(ForkJoin));
  }
}

// SyncP's shard phase replays each deferred access against a per-shard
// AccessHistory over the TO prefilter clock and re-decides every candidate
// with the exact SP-closure (through the detector-owned ShardContext) — a
// completely different code path from the sequential walk, held to the
// same bit-for-bit contract.
TEST_P(DifferentialFuzzTest, ShardedSyncPMatchesSequentialBitForBit) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(fuzzParams(GetParam() ^ 0x3b3b, ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    expectShardedMatchesSequential(
        [](const Trace &F) { return std::make_unique<SyncPDetector>(F); }, T,
        "SyncP seed " + std::to_string(GetParam()) + " fj=" +
            std::to_string(ForkJoin));
  }
}

// The adversarial workload matrix: each seed draws one shape (rotating
// through all of them across the seed range), and every detector's sharded
// runs must stay bit-identical to its sequential run on that trace. The
// shapes stress the axes uniform random programs miss — Zipf skew funnels
// whole shards onto one variable (theta = 1.2 uses the exact-table
// sampler), producer/consumer chains cross-thread read-sees-write through
// a locked queue, barrier-heavy saturates one lock from every thread, and
// declaration-dense keeps declaring ids until the last event.
TEST_P(DifferentialFuzzTest, AdversarialMatrixMatchesSequentialBitForBit) {
  const uint64_t Seed = GetParam();
  const std::vector<WorkloadShape> &Shapes = allWorkloadShapes();
  WorkloadShape Shape = Shapes[Seed % Shapes.size()];
  Trace T = makeAdversarialTrace(Shape, Seed);
  ASSERT_TRUE(validateTrace(T).ok()) << workloadShapeName(Shape);
  std::vector<std::pair<const char *, DetectorFactory>> Factories = {
      {"HB", [](const Trace &F) { return std::make_unique<HbDetector>(F); }},
      {"WCP", [](const Trace &F) { return std::make_unique<WcpDetector>(F); }},
      {"FastTrack",
       [](const Trace &F) { return std::make_unique<FastTrackDetector>(F); }},
      {"SyncP",
       [](const Trace &F) { return std::make_unique<SyncPDetector>(F); }},
  };
  for (auto &[Name, Make] : Factories)
    expectShardedMatchesSequential(Make, T,
                                   std::string(Name) + " shape " +
                                       workloadShapeName(Shape) + " seed " +
                                       std::to_string(Seed));
}

// The frequency-balanced shard plan must be invisible in results: same
// bit-for-bit contract as the modulo plan, via the pipeline's strategy
// option.
TEST_P(DifferentialFuzzTest, BalancedStrategyMatchesSequentialBitForBit) {
  Trace T = randomTrace(fuzzParams(GetParam() ^ 0x1234, GetParam() % 2 == 0));
  std::vector<std::pair<const char *, DetectorFactory>> Factories = {
      {"HB", [](const Trace &F) { return std::make_unique<HbDetector>(F); }},
      {"FastTrack",
       [](const Trace &F) { return std::make_unique<FastTrackDetector>(F); }},
  };
  for (auto &[Name, Make] : Factories) {
    std::unique_ptr<Detector> D = Make(T);
    RunResult Want = runDetector(*D, T);
    PipelineOptions Opts;
    Opts.NumThreads = 2;
    Opts.VarShards = 4;
    Opts.VarShardStrategy = ShardStrategy::FrequencyBalanced;
    AnalysisPipeline P(Opts);
    P.addDetector(Make);
    PipelineResult R = P.run(T);
    ASSERT_EQ(R.Lanes.size(), 1u);
    ASSERT_TRUE(R.Lanes[0].Error.empty()) << R.Lanes[0].Error;
    expectSameReport(R.Lanes[0].Report, Want.Report, T,
                     std::string("balanced/") + Name + " seed " +
                         std::to_string(GetParam()));
  }
}

// ---- Oracle cross-check -----------------------------------------------------

// On small traces the declarative closure is affordable: every race the
// sharded HB lane reports must be a true HB race per the oracle, and the
// "any race at all" verdicts must agree (the streaming detector only
// checks the last access per thread, so instance *sets* may differ, but a
// racy trace can never look race-free or vice versa).
TEST_P(DifferentialFuzzTest, ShardedHbAgreesWithClosureOracle) {
  for (bool ForkJoin : {false, true}) {
    RandomTraceParams P = fuzzParams(GetParam() ^ 0xc0de, ForkJoin);
    P.OpsPerThread = 15 + GetParam() % 20; // Keep the O(N^2) oracle cheap.
    Trace T = randomTrace(P);
    ClosureEngine Ref(T);
    RunResult Sharded = runDetectorSharded(
        [](const Trace &F) { return std::make_unique<HbDetector>(F); }, T,
        /*NumShards=*/4);
    for (const RaceInstance &I : Sharded.Report.instances())
      EXPECT_TRUE(Ref.isRace(OrderKind::HB, I.EarlierIdx, I.LaterIdx))
          << "seed " << GetParam() << ": " << I.str(T);
    EXPECT_EQ(Sharded.Report.numDistinctPairs() > 0,
              !Ref.races(OrderKind::HB).empty())
        << "seed " << GetParam() << " fj=" << ForkJoin;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range<uint64_t>(1, 51));

// ---- Sharding internals -----------------------------------------------------

TEST(ShardPlanTest, PartitionCoversEveryVariableExactlyOnce) {
  for (uint32_t NumShards : {1u, 2u, 4u, 8u, 13u}) {
    ShardPlan Plan{NumShards};
    for (uint32_t NumVars : {0u, 1u, 7u, 8u, 29u}) {
      uint32_t Total = 0;
      for (uint32_t S = 0; S != NumShards; ++S)
        Total += Plan.numLocalVars(S, NumVars);
      EXPECT_EQ(Total, NumVars) << NumShards << " shards";
      for (uint32_t V = 0; V != NumVars; ++V) {
        uint32_t S = Plan.shardOf(VarId(V));
        EXPECT_LT(S, NumShards);
        EXPECT_LT(Plan.localIdOf(VarId(V)), Plan.numLocalVars(S, NumVars));
      }
    }
  }
}

TEST(ShardPlanTest, BalancedPlanCoversEveryVariableWithDenseLocalIds) {
  // Same partition invariants as the modulo plan, on skewed counts: every
  // variable in exactly one shard, local ids dense per shard.
  std::vector<uint64_t> Counts = {1000, 1, 1, 1, 999, 0, 5, 5, 5, 5, 2, 0};
  for (uint32_t NumShards : {1u, 2u, 4u, 7u}) {
    ShardPlan Plan = ShardPlan::balancedByFrequency(NumShards, Counts);
    EXPECT_EQ(Plan.NumShards, NumShards);
    uint32_t Total = 0;
    for (uint32_t S = 0; S != NumShards; ++S)
      Total += Plan.numLocalVars(S, Counts.size());
    EXPECT_EQ(Total, Counts.size());
    std::vector<std::set<uint32_t>> Locals(NumShards);
    for (uint32_t V = 0; V != Counts.size(); ++V) {
      uint32_t S = Plan.shardOf(VarId(V));
      ASSERT_LT(S, NumShards);
      uint32_t Local = Plan.localIdOf(VarId(V));
      EXPECT_LT(Local, Plan.numLocalVars(S, Counts.size()));
      EXPECT_TRUE(Locals[S].insert(Local).second)
          << "local id " << Local << " reused in shard " << S;
    }
  }
}

TEST(ShardPlanTest, BalancedPlanBeatsModuloOnSkewedCounts) {
  // Adversarial skew for x mod N: the heavy hitters all share a residue
  // class, so the modulo plan piles them onto one shard. The greedy
  // frequency plan must spread them, and can never do worse than modulo's
  // hottest shard... nor better than the single heaviest variable.
  const uint32_t NumShards = 4;
  std::vector<uint64_t> Counts(32, 1);
  for (uint32_t V = 0; V < 32; V += NumShards)
    Counts[V] = 1000; // All multiples of 4 → modulo shard 0.
  ShardPlan Modulo{NumShards};
  ShardPlan Balanced = ShardPlan::balancedByFrequency(NumShards, Counts);
  uint64_t ModuloMax = Modulo.maxShardLoad(Counts);
  uint64_t BalancedMax = Balanced.maxShardLoad(Counts);
  EXPECT_EQ(ModuloMax, 8 * 1000u);
  EXPECT_LT(BalancedMax, ModuloMax / 3) << "skew not balanced";
  EXPECT_GE(BalancedMax, 2 * 1000u) << "8 heavy vars on 4 shards";
  // Deterministic: same counts, same plan.
  ShardPlan Again = ShardPlan::balancedByFrequency(NumShards, Counts);
  EXPECT_EQ(Balanced.Assign, Again.Assign);
  EXPECT_EQ(Balanced.Local, Again.Local);
}

TEST(ClockBroadcastTest, ConsecutiveAccessesShareSnapshots) {
  // A single-threaded run of reads/writes never changes the HB clock, so
  // the broadcast must publish exactly one snapshot however many accesses
  // stream through — the memory contract of the clock pass.
  Trace T;
  ThreadId T0(T.threadTable().intern("T0"));
  VarId X(T.varTable().intern("x"));
  LocId L(T.locTable().intern("L1"));
  for (int I = 0; I != 64; ++I)
    T.append(Event(I % 2 ? EventKind::Read : EventKind::Write, T0, X.value(),
                   L));
  HbDetector D(T);
  AccessLog Log(T.numThreads());
  ASSERT_TRUE(D.beginCapture(Log));
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);
  EXPECT_EQ(Log.numAccesses(), 64u);
  EXPECT_EQ(Log.clocks().numSnapshots(), 1u);
}

TEST(ShardedAccessHistoryTest, MergeRestoresTraceOrder) {
  std::vector<std::vector<RaceInstance>> PerShard(3);
  auto mk = [](EventIdx Earlier, EventIdx Later) {
    RaceInstance I;
    I.EarlierIdx = Earlier;
    I.LaterIdx = Later;
    I.EarlierLoc = LocId(static_cast<uint32_t>(Earlier));
    I.LaterLoc = LocId(static_cast<uint32_t>(Later));
    I.Var = VarId(0);
    return I;
  };
  PerShard[0] = {mk(1, 5), mk(2, 9)};
  PerShard[1] = {mk(0, 3), mk(6, 12)};
  PerShard[2] = {mk(4, 7)};
  RaceReport R = ShardedAccessHistory::mergeInTraceOrder(PerShard);
  ASSERT_EQ(R.instances().size(), 5u);
  EventIdx Prev = 0;
  for (const RaceInstance &I : R.instances()) {
    EXPECT_GE(I.LaterIdx, Prev);
    Prev = I.LaterIdx;
  }
  EXPECT_EQ(R.instances().front().LaterIdx, 3u);
  EXPECT_EQ(R.instances().back().LaterIdx, 12u);
}
