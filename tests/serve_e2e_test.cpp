//===- tests/serve_e2e_test.cpp - Live-attach end-to-end pin ------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// The serving layer's whole-stack pin, run against the real binaries:
//
//   1. race_serverd accepts an *interposed* pthread program — the demo
//      runs under LD_PRELOAD=librace_interpose.so, streaming its modeled
//      trace into a live session while also recording the identical
//      stream to a text file. At least one mid-stream partialResult is
//      captured and asserted to be an exact per-lane prefix of the final
//      report; the final report must be bit-for-bit identical to an
//      offline `race_cli <recording> --report-out` run. Live attach adds
//      nothing and loses nothing.
//
//   2. race_serverd sustains >= 8 concurrent sessions under deliberately
//      small lag budgets with a slowed lane: a ninth over-budget blaster
//      is *parked* (backpressure), not OOM'd or silently truncated — its
//      event count at finalize equals what was sent.
//
// Binary locations arrive via RACE_SERVERD / RACE_CLI / RACE_INTERPOSE /
// RACE_DEMO (wired by CMake through `cmake -E env`); when absent (e.g.
// running the gtest binary by hand) the tests skip.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "io/WireFormat.h"
#include "serve/WireClient.h"
#include "trace/Trace.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace rapid;

namespace {

const char *envOrNull(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V ? V : nullptr;
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "rapidpp_e2e_" + Name;
}

/// fork/exec with extra environment entries; returns the child pid.
/// \p StdoutPath, when nonempty, redirects the child's stdout there.
pid_t spawn(const std::vector<std::string> &Argv,
            const std::vector<std::pair<std::string, std::string>> &Env = {},
            const std::string &StdoutPath = std::string()) {
  pid_t P = fork();
  if (P != 0)
    return P;
  for (const auto &KV : Env)
    setenv(KV.first.c_str(), KV.second.c_str(), 1);
  if (!StdoutPath.empty() && !std::freopen(StdoutPath.c_str(), "w", stdout))
    _exit(126);
  std::vector<char *> A;
  A.reserve(Argv.size() + 1);
  for (const std::string &S : Argv)
    A.push_back(const_cast<char *>(S.c_str()));
  A.push_back(nullptr);
  execv(A[0], A.data());
  std::fprintf(stderr, "execv(%s) failed\n", A[0]);
  _exit(127);
}

int waitFor(pid_t P) {
  int St = 0;
  while (waitpid(P, &St, 0) < 0 && errno == EINTR)
    ;
  return WIFEXITED(St) ? WEXITSTATUS(St) : 128 + WTERMSIG(St);
}

/// RAII for the daemon: SIGTERM + reap on scope exit.
struct Daemon {
  pid_t Pid = -1;
  ~Daemon() {
    if (Pid > 0) {
      kill(Pid, SIGTERM);
      waitFor(Pid);
    }
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Splits a canonical listing into per-lane `race ...` line sequences.
std::vector<std::vector<std::string>> raceLinesPerLane(const std::string &C) {
  std::vector<std::vector<std::string>> Lanes;
  std::istringstream In(C);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("lane ", 0) == 0)
      Lanes.emplace_back();
    else if (Line.rfind("race ", 0) == 0 && !Lanes.empty())
      Lanes.back().push_back(Line);
  }
  return Lanes;
}

uint64_t canonEvents(const std::string &Canon) {
  std::istringstream In(Canon);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("events ", 0) == 0)
      return std::strtoull(Line.c_str() + 7, nullptr, 10);
  return 0;
}

void expectCanonIsPrefix(const std::string &Partial, const std::string &Final,
                         const std::string &Label) {
  auto P = raceLinesPerLane(Partial), F = raceLinesPerLane(Final);
  ASSERT_EQ(P.size(), F.size()) << Label;
  for (size_t L = 0; L != P.size(); ++L) {
    ASSERT_LE(P[L].size(), F[L].size()) << Label << " lane " << L;
    for (size_t I = 0; I != P[L].size(); ++I)
      EXPECT_EQ(P[L][I], F[L][I]) << Label << " lane " << L << " race " << I;
  }
  EXPECT_LE(canonEvents(Partial), canonEvents(Final)) << Label;
}

/// One control query returning the roster text. Retries transient "busy"
/// errors (a producer holding its session lock).
bool roster(WireClient &C, std::string &Out) {
  for (int Try = 0; Try < 50; ++Try) {
    if (!C.sendListSessions().ok())
      return false;
    WireFrame Type;
    if (!C.readFrame(Type, Out).ok())
      return false;
    if (Type == WireFrame::SessionList)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// The live session that has actually ingested events — the *producer's*
/// session, as opposed to a control connection's idle one (every accepted
/// connection owns a session, so "first live" would be ambiguous).
uint64_t liveSessionWithEvents(const std::string &Roster) {
  std::istringstream In(Roster);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("session ", 0) != 0)
      continue;
    size_t At = Line.find(" events ");
    if (At != std::string::npos &&
        std::strtoull(Line.c_str() + At + 8, nullptr, 10) > 0)
      return std::strtoull(Line.c_str() + 8, nullptr, 10);
  }
  return 0;
}

struct Paths {
  const char *Serverd = envOrNull("RACE_SERVERD");
  const char *Cli = envOrNull("RACE_CLI");
  const char *Interpose = envOrNull("RACE_INTERPOSE");
  const char *Demo = envOrNull("RACE_DEMO");
  bool complete() const { return Serverd && Cli && Interpose && Demo; }
};

} // namespace

TEST(ServeE2eTest, InterposedDemoMatchesOfflineReplayBitForBit) {
  Paths P;
  if (!P.complete())
    GTEST_SKIP() << "RACE_SERVERD/RACE_CLI/RACE_INTERPOSE/RACE_DEMO not set";

  std::string Sock = tempPath("live.sock");
  std::string Rec = tempPath("live_rec.txt");
  std::string Off = tempPath("live_off.txt");
  std::remove(Rec.c_str());
  std::remove(Off.c_str());

  Daemon Server;
  Server.Pid = spawn({P.Serverd, "--socket", Sock, "--hb", "--wcp", "--quiet"});
  ASSERT_GT(Server.Pid, 0);

  // The control connection doubles as the "server is up" probe.
  WireClient Ctl;
  ASSERT_TRUE(Ctl.connectUnix(Sock, 10000).ok()) << "server did not come up";
  ASSERT_TRUE(Ctl.sendHello().ok());

  // A long-enough run that mid-stream queries land while it is live.
  pid_t Demo = spawn({P.Demo}, {{"LD_PRELOAD", P.Interpose},
                                {"RACE_SERVER", Sock},
                                {"RACE_RECORD", Rec},
                                {"RACE_FLUSH_MS", "20"},
                                {"RACE_DEMO_THREADS", "4"},
                                {"RACE_DEMO_ITERS", "600"},
                                {"RACE_DEMO_SLEEP_US", "3000"}});
  ASSERT_GT(Demo, 0);

  // Find the demo's live session, then capture a nonempty mid-stream
  // partial report (retrying through "busy" and empty-prefix states).
  uint64_t Sid = 0;
  std::string PartialCanon;
  for (int Try = 0; Try < 600 && PartialCanon.empty(); ++Try) {
    std::string R;
    ASSERT_TRUE(roster(Ctl, R));
    if (Sid == 0)
      Sid = liveSessionWithEvents(R);
    if (Sid != 0) {
      ASSERT_TRUE(Ctl.sendPartialQuery(Sid).ok());
      WireFrame Type;
      std::string Payload;
      ASSERT_TRUE(Ctl.readFrame(Type, Payload).ok());
      if (Type == WireFrame::Report && Payload.size() > 9 && Payload[0] == 1) {
        std::string Canon = Payload.substr(9);
        if (canonEvents(Canon) > 0)
          PartialCanon = Canon;
      } // WireError ("busy"/"not live") and empty partials: retry.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(waitFor(Demo), 0);
  ASSERT_FALSE(PartialCanon.empty())
      << "no mid-stream partial captured while the demo ran";
  ASSERT_NE(Sid, 0u);

  // The demo exited; its interposer sent Finish and drained the final
  // report. Wait until the roster shows the finished session, then fetch
  // the retained canonical report.
  std::string FinalCanon;
  for (int Try = 0; Try < 600 && FinalCanon.empty(); ++Try) {
    ASSERT_TRUE(Ctl.sendFinalQuery(Sid).ok());
    WireFrame Type;
    std::string Payload;
    ASSERT_TRUE(Ctl.readFrame(Type, Payload).ok());
    if (Type == WireFrame::Report && Payload.size() > 9 && Payload[0] == 0)
      FinalCanon = Payload.substr(9);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(FinalCanon.empty()) << "final report never became queryable";

  // The partial is an exact prefix; the planted race was found live.
  expectCanonIsPrefix(PartialCanon, FinalCanon, "live partial vs final");
  EXPECT_NE(FinalCanon.find("race racy "), std::string::npos)
      << "the demo's planted race is missing from the live report:\n"
      << FinalCanon;

  // Offline replay of the recorded stream must reproduce the live report
  // byte for byte.
  ASSERT_FALSE(slurp(Rec).empty()) << "interposer recorded nothing";
  int Rc = waitFor(spawn(
      {P.Cli, Rec, "--hb", "--wcp", "--report-out", Off}));
  ASSERT_EQ(Rc, 0) << "offline race_cli failed";
  std::string OfflineCanon = slurp(Off);
  ASSERT_FALSE(OfflineCanon.empty());
  EXPECT_EQ(FinalCanon, OfflineCanon)
      << "live and offline reports diverged";

  std::remove(Rec.c_str());
  std::remove(Off.c_str());
}

TEST(ServeE2eTest, NineConcurrentSessionsWithBudgetsAndBackpressure) {
  Paths P;
  if (!P.complete())
    GTEST_SKIP() << "RACE_SERVERD/RACE_CLI/RACE_INTERPOSE/RACE_DEMO not set";

  std::string Sock = tempPath("fleet.sock");
  Daemon Server;
  // A slowed lane plus a tiny lag budget: every producer can outrun its
  // session, and the blaster definitely will. The slow lane must be
  // *decisively* slower than a preempted ingest task (2 ms/event vs a
  // burst-fed socket) or the park becomes a scheduling race on loaded
  // hosts — and the stream batch must stay small, because consumers
  // hold their snapshot lock per batch and a whole-trace batch would
  // make the daemon's lag check wait out the lane and then read lag 0.
  Server.Pid = spawn({P.Serverd, "--socket", Sock, "--hb", "--quiet",
                      "--debug-slow-us", "2000", "--stream-batch", "32",
                      "--budget-lag", "64"});
  ASSERT_GT(Server.Pid, 0);

  // A small racy trace every producer sends; the blaster sends it many
  // times over (several thousand events against a 64-event budget).
  TraceBuilder B;
  for (int I = 0; I < 8; ++I) {
    std::string L = "L" + std::to_string(I);
    B.write("T0", "x", L + "a").write("T1", "x", L + "b");
    B.acquire("T0", "m", L + "c").write("T0", "y", L + "d");
    B.release("T0", "m", L + "e");
    B.acquire("T1", "m", L + "f").write("T1", "y", L + "g");
    B.release("T1", "m", L + "h");
  }
  Trace Small = testutil::takeValid(B);
  TraceBuilder BigB;
  for (int I = 0; I < 400; ++I) {
    std::string L = "L" + std::to_string(I);
    BigB.write("T0", "x", L + "a").write("T1", "x", L + "b");
  }
  Trace Big = testutil::takeValid(BigB);

  constexpr int Normals = 8;
  std::vector<std::unique_ptr<WireClient>> Clients;
  for (int I = 0; I < Normals + 1; ++I) {
    auto C = std::make_unique<WireClient>();
    ASSERT_TRUE(C->connectUnix(Sock, 10000).ok()) << "client " << I;
    ASSERT_TRUE(C->sendHello().ok());
    Clients.push_back(std::move(C));
  }
  // All nine connected before anything finishes: stream without Finish.
  for (int I = 0; I < Normals; ++I)
    ASSERT_TRUE(Clients[I]->sendTrace(Small, 8).ok());
  WireClient &Blaster = *Clients[Normals];
  ASSERT_TRUE(Blaster.sendTrace(Big, 16).ok());

  // Roster must show all nine live at once, and the blaster (or any
  // over-budget producer) must park — backpressure, not buffering.
  WireClient Ctl;
  ASSERT_TRUE(Ctl.connectUnix(Sock, 10000).ok());
  ASSERT_TRUE(Ctl.sendHello().ok());
  bool SawNine = false, SawPark = false;
  for (int Try = 0; Try < 600 && !(SawNine && SawPark); ++Try) {
    std::string R;
    ASSERT_TRUE(roster(Ctl, R));
    if (R.find("sessions active 10") != std::string::npos ||
        R.find("sessions active 9") != std::string::npos)
      SawNine = true;
    std::istringstream In(R);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.rfind("session ", 0) != 0)
        continue;
      size_t At = Line.find(" parks ");
      if (At != std::string::npos &&
          std::strtoull(Line.c_str() + At + 7, nullptr, 10) > 0)
        SawPark = true;
      if (Line.find("state parked") != std::string::npos)
        SawPark = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(SawNine) << "never saw >= 9 concurrent sessions";
  EXPECT_TRUE(SawPark) << "no session ever parked under a 64-event budget";

  // Finish everyone; every session — the blaster included — must deliver
  // a clean final report with its complete event count.
  for (auto &C : Clients)
    ASSERT_TRUE(C->sendFinish().ok());
  for (int I = 0; I <= Normals; ++I) {
    WireFrame Type;
    std::string Payload;
    ASSERT_TRUE(Clients[I]->readFrame(Type, Payload, 120000).ok())
        << "client " << I;
    ASSERT_EQ(Type, WireFrame::Report) << "client " << I << ": "
                                       << Payload.substr(1);
    EXPECT_EQ(Payload[0], 0);
    std::string Canon = Payload.substr(9);
    uint64_t Want = I == Normals ? Big.size() : Small.size();
    EXPECT_EQ(canonEvents(Canon), Want)
        << "client " << I << " lost events under backpressure";
  }
}

TEST(ServeE2eTest, SigtermDrainsBufferedFramesAndReportsPrefix) {
  Paths P;
  if (!P.complete())
    GTEST_SKIP() << "RACE_SERVERD/RACE_CLI/RACE_INTERPOSE/RACE_DEMO not set";

  std::string Sock = tempPath("drain.sock");
  std::string Out = tempPath("drain_stdout.txt");
  std::remove(Out.c_str());

  // No --quiet: the drained session summaries land on the redirected
  // stdout and are this test's oracle.
  Daemon Server;
  Server.Pid = spawn({P.Serverd, "--socket", Sock, "--hb", "--wcp"}, {}, Out);
  ASSERT_GT(Server.Pid, 0);

  TraceBuilder B;
  for (int I = 0; I < 200; ++I) {
    std::string L = "L" + std::to_string(I);
    B.write("T0", "x", L + "a").write("T1", "x", L + "b");
  }
  Trace T = testutil::takeValid(B);

  // Stream the whole trace but never Finish: at SIGTERM the session is
  // live with everything in flight.
  WireClient C;
  ASSERT_TRUE(C.connectUnix(Sock, 10000).ok()) << "server did not come up";
  ASSERT_TRUE(C.sendHello().ok());
  ASSERT_TRUE(C.sendTrace(T, 64).ok());

  // Wait until the roster shows the full stream ingested (the drain
  // guarantee covers bytes the IO thread has *read*; bytes still in the
  // kernel socket buffer at SIGTERM are legitimately part of the lost
  // tail, so pin the deterministic case: everything already in).
  WireClient Ctl;
  ASSERT_TRUE(Ctl.connectUnix(Sock, 10000).ok());
  ASSERT_TRUE(Ctl.sendHello().ok());
  const std::string AllIn = " events " + std::to_string(T.size());
  bool SawAll = false;
  for (int Try = 0; Try < 600 && !SawAll; ++Try) {
    std::string R;
    ASSERT_TRUE(roster(Ctl, R));
    SawAll = R.find(AllIn) != std::string::npos;
    if (!SawAll)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(SawAll) << "stream never fully ingested";

  // Clean drain: buffered whole frames are applied, the live session is
  // finalized as an eviction (clean=0), and the daemon exits 0.
  ASSERT_EQ(kill(Server.Pid, SIGTERM), 0);
  EXPECT_EQ(waitFor(Server.Pid), 0) << "daemon did not exit cleanly";
  Server.Pid = -1;

  std::string Stdout = slurp(Out);
  ASSERT_NE(Stdout.find("session "), std::string::npos)
      << "no drained-session summary on stdout:\n"
      << Stdout;
  // Every byte we sent was whole frames, so the drain must apply the
  // complete stream — partialResult() semantics: a prefix, never a
  // truncation mid-frame. The producer's summary line carries the count.
  EXPECT_NE(Stdout.find("events=" + std::to_string(T.size())),
            std::string::npos)
      << "drained session lost buffered events:\n"
      << Stdout;
  EXPECT_NE(Stdout.find("clean=0"), std::string::npos)
      << "an unfinished session must finalize as an eviction:\n"
      << Stdout;

  std::remove(Out.c_str());
}
