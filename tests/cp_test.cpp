//===- tests/cp_test.cpp - CP engine & closure internals -----------------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// CP (Definition 2) verdicts, rule-edge accounting in the closure engine,
// the CP-vs-WCP separations the paper's §2.3 walks through, and the
// windowed deployment mode CP is forced into (§1).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cp/CpEngine.h"
#include "gen/PaperTraces.h"
#include "gen/RandomTraceGen.h"
#include "reference/ClosureEngine.h"
#include "trace/TraceBuilder.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

TEST(CpRuleTest, RuleAOrdersConflictingSections) {
  // Two sections on l with conflicting accesses: rel1 ≺CP acq2, so the
  // *whole* later section is ordered — including events before the
  // conflicting access (the rigidity WCP removes).
  Trace T = paperFig2b().T;
  ClosureEngine E(T);
  // rel(l)@3 ≺CP acq(l)@4 composes to order w(y)@0 with r(y)@5.
  EXPECT_TRUE(E.ordered(OrderKind::CP, 0, 5));
  EXPECT_FALSE(E.ordered(OrderKind::WCP, 0, 5));
  EXPECT_GE(E.numRuleAEdges(OrderKind::CP), 1u);
}

TEST(CpRuleTest, NoConflictNoRuleA) {
  Trace T = paperFig1b().T;
  ClosureEngine E(T);
  // The two sections only read x: no conflicting events, no CP edge,
  // so CP (like WCP) reports the y race.
  EXPECT_EQ(E.numRuleAEdges(OrderKind::CP), 0u);
  EXPECT_TRUE(E.isRace(OrderKind::CP, 0, 7));
}

TEST(CpRuleTest, RuleBChainsThroughSyncs) {
  // Figure 4: CP needs rule (b) twice (via the sync(x) pair) to order
  // the z accesses; WCP's weaker rule (b) does not complete the chain.
  Trace T = paperFig4().T;
  ClosureEngine E(T);
  EXPECT_GE(E.numRuleBEdges(OrderKind::CP), 1u);
  RaceReport Wcp = testutil::run<WcpDetector>(T);
  EXPECT_EQ(Wcp.numDistinctPairs(), 1u);
  EXPECT_EQ(runCpFull(T).Report.numDistinctPairs(), 0u);
}

TEST(CpRuleTest, WcpRuleBOrdersReleasesNotAcquires) {
  // §2.2: WCP rule (b) orders rel1 before rel2 (not acq2). In Figure 3
  // this is exactly why the chain to w(z) breaks for WCP but not CP.
  Trace T = paperFig3().T;
  ClosureEngine E(T);
  // Find the two rel(l) events (lock named "l").
  std::vector<EventIdx> Rels;
  for (EventIdx I = 0; I != T.size(); ++I) {
    const Event &Ev = T.event(I);
    if (Ev.Kind == EventKind::Release && T.lockName(Ev.lock()) == "l")
      Rels.push_back(I);
  }
  ASSERT_EQ(Rels.size(), 2u);
  EXPECT_TRUE(E.ordered(OrderKind::WCP, Rels[0], Rels[1]))
      << "rule (b) orders release before release";
  // But the earlier release is NOT WCP-ordered to the later *acquire*'s
  // section start the way CP orders it.
  EXPECT_TRUE(E.ordered(OrderKind::CP, Rels[0], Rels[1]));
}

TEST(CpEngineTest, FullRunCountsRacesLikeClosure) {
  for (uint64_t Seed : {2u, 9u, 21u}) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.OpsPerThread = 25;
    Trace T = randomTrace(P);
    ClosureEngine E(T);
    CpResult R = runCpFull(T);
    // Same distinct location pairs.
    RaceReport FromClosure;
    for (const RaceInstance &I : E.races(OrderKind::CP))
      FromClosure.addRace(I);
    EXPECT_EQ(R.Report.numDistinctPairs(), FromClosure.numDistinctPairs());
  }
}

TEST(CpEngineTest, WindowingIsTheDeploymentModeAndItCosts) {
  // Two CP-visible races, one near and one far; a 16-event window keeps
  // the near one and loses the far one.
  TraceBuilder B;
  B.write("t1", "near", "n1");
  B.write("t2", "near", "n2");
  B.write("t1", "far", "f1");
  for (int I = 0; I < 60; ++I)
    B.acrl("t1", "pad"); // HB edges only; no conflicts.
  B.write("t2", "far", "f2");
  Trace T = testutil::takeValid(B);

  CpResult Full = runCpFull(T);
  EXPECT_EQ(Full.Report.numDistinctPairs(), 2u);

  CpResult Windowed = runCpWindowed(T, 16);
  EXPECT_EQ(Windowed.Report.numDistinctPairs(), 1u);
  EXPECT_TRUE(Windowed.Report.hasPair(
      RacePair(T.event(0).Loc, T.event(1).Loc)));
  EXPECT_GT(Windowed.NumWindows, 4u);
}

TEST(ClosureOptionsTest, SameThreadRuleBIsStrictlyStronger) {
  // The literal Definition 3 admits rule (b) on same-thread section
  // pairs; the algorithmic variant (queues) cannot. The literal variant
  // must only ever *add* orderings.
  for (uint64_t Seed : {5u, 13u, 29u, 41u}) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.OpsPerThread = 30;
    P.NumLocks = 2;
    Trace T = randomTrace(P);
    ClosureEngine Algorithmic(T);
    ClosureOptions Literal;
    Literal.SameThreadRuleB = true;
    ClosureEngine Definition(T, Literal);
    for (EventIdx BIdx = 0; BIdx != T.size(); ++BIdx) {
      for (EventIdx A = 0; A != BIdx; ++A) {
        if (Algorithmic.ordered(OrderKind::WCP, A, BIdx)) {
          EXPECT_TRUE(Definition.ordered(OrderKind::WCP, A, BIdx))
              << "seed " << Seed;
        }
      }
    }
  }
}

TEST(ClosureEngineTest, HardOrderIsContainedInHb) {
  RandomTraceParams P;
  P.Seed = 7;
  P.WithForkJoin = true;
  Trace T = randomTrace(P);
  ClosureEngine E(T);
  for (EventIdx B = 0; B != T.size(); ++B) {
    for (EventIdx A = 0; A != B; ++A) {
      if (E.ordered(OrderKind::Hard, A, B)) {
        EXPECT_TRUE(E.ordered(OrderKind::HB, A, B));
      }
    }
  }
}

TEST(ClosureEngineTest, OrderNamesAreStable) {
  EXPECT_STREQ(orderKindName(OrderKind::Hard), "Hard");
  EXPECT_STREQ(orderKindName(OrderKind::HB), "HB");
  EXPECT_STREQ(orderKindName(OrderKind::CP), "CP");
  EXPECT_STREQ(orderKindName(OrderKind::WCP), "WCP");
}

TEST(ClosureEngineTest, RacesComeOutInTraceOrder) {
  TraceBuilder B;
  B.write("t1", "a", "w1");
  B.write("t2", "a", "w2");
  B.write("t1", "b", "w3");
  B.write("t2", "b", "w4");
  Trace T = testutil::takeValid(B);
  ClosureEngine E(T);
  std::vector<RaceInstance> R = E.races(OrderKind::HB);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_LE(R[0].LaterIdx, R[1].LaterIdx);
}
