//===- tests/equivalence_test.cpp - Theorem 2 property tests -----------------===//
//
// Part of rapidpp (PLDI'17 WCP reproduction).
//
// Theorem 2: for events a <tr b, C_a ⊑ C_b ⟺ a ≤WCP b. We check the
// streaming detector's timestamps against the declarative closure on
// randomized traces, plus the race-set equalities it implies, and the
// inclusion chain ≤WCP ⊆ ≤CP ⊆ ≤HB the paper proves.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomTraceGen.h"
#include "hb/HbDetector.h"
#include "reference/ClosureEngine.h"
#include "trace/TraceValidator.h"
#include "wcp/WcpDetector.h"

#include <gtest/gtest.h>

using namespace rapid;

namespace {

RandomTraceParams paramsForSeed(uint64_t Seed, bool ForkJoin) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + Seed % 4;        // 2..5 threads
  P.NumLocks = 1 + Seed % 4;          // 1..4 locks
  P.NumVars = 2 + Seed % 5;           // 2..6 vars
  P.OpsPerThread = 20 + (Seed * 7) % 40;
  P.MaxLockNesting = 1 + Seed % 3;
  P.WithForkJoin = ForkJoin;
  return P;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(EquivalenceTest, Theorem2TimestampsMatchClosure) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(paramsForSeed(GetParam(), ForkJoin));
    ASSERT_TRUE(validateTrace(T).ok());
    ClosureEngine Ref(T);
    std::vector<VectorClock> C =
        testutil::captureTimestamps<WcpDetector>(T);
    for (EventIdx B = 0; B != T.size(); ++B) {
      for (EventIdx A = 0; A != B; ++A) {
        bool Clock = C[A].lessOrEqual(C[B]);
        bool Order = Ref.ordered(OrderKind::WCP, A, B);
        ASSERT_EQ(Clock, Order)
            << "fork/join=" << ForkJoin << " seed=" << GetParam() << "\n a="
            << T.eventStr(A) << " (#" << A << ")\n b=" << T.eventStr(B)
            << " (#" << B << ")\n Ca=" << C[A].str() << " Cb=" << C[B].str();
      }
    }
  }
}

TEST_P(EquivalenceTest, HbDetectorMatchesHbClosure) {
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(paramsForSeed(GetParam() ^ 0x77, ForkJoin));
    ClosureEngine Ref(T);
    // Compare race *event pairs* found by the streaming detector with the
    // closure. The streaming detector only checks against the most recent
    // access per (thread, kind), so compare on the per-event level: every
    // streaming race is a closure race, and both agree on which events
    // are racy seconds.
    RaceReport R = testutil::run<HbDetector>(T);
    for (const RaceInstance &I : R.instances())
      EXPECT_TRUE(Ref.isRace(OrderKind::HB, I.EarlierIdx, I.LaterIdx))
          << I.str(T);
    // Exact verdict equality.
    EXPECT_EQ(R.numDistinctPairs() > 0,
              !Ref.races(OrderKind::HB).empty());
  }
}

TEST_P(EquivalenceTest, WcpRaceInstancesAgreeWithClosure) {
  Trace T = randomTrace(paramsForSeed(GetParam() ^ 0x1234, false));
  ClosureEngine Ref(T);
  RaceReport R = testutil::run<WcpDetector>(T);
  for (const RaceInstance &I : R.instances())
    EXPECT_TRUE(Ref.isRace(OrderKind::WCP, I.EarlierIdx, I.LaterIdx))
        << I.str(T);
  EXPECT_EQ(R.numDistinctPairs() > 0, !Ref.races(OrderKind::WCP).empty());
}

TEST_P(EquivalenceTest, InclusionChainWcpCpHb) {
  // ≤WCP ⊆ ≤CP ⊆ ≤HB (§2.2), equivalently races(HB) ⊆ races(CP) ⊆
  // races(WCP) as sets of event pairs.
  for (bool ForkJoin : {false, true}) {
    Trace T = randomTrace(paramsForSeed(GetParam() ^ 0xbeef, ForkJoin));
    ClosureEngine Ref(T);
    for (EventIdx B = 0; B != T.size(); ++B) {
      for (EventIdx A = 0; A != B; ++A) {
        if (Ref.ordered(OrderKind::WCP, A, B)) {
          EXPECT_TRUE(Ref.ordered(OrderKind::CP, A, B))
              << T.eventStr(A) << " -> " << T.eventStr(B);
        }
        if (Ref.ordered(OrderKind::CP, A, B)) {
          EXPECT_TRUE(Ref.ordered(OrderKind::HB, A, B))
              << T.eventStr(A) << " -> " << T.eventStr(B);
        }
        if (Ref.ordered(OrderKind::Hard, A, B)) {
          EXPECT_TRUE(Ref.ordered(OrderKind::WCP, A, B));
        }
      }
    }
  }
}

TEST_P(EquivalenceTest, QueueAccountingStaysConsistent) {
  Trace T = randomTrace(paramsForSeed(GetParam() ^ 0xfeed, false));
  WcpDetector D(T);
  for (EventIdx I = 0; I != T.size(); ++I)
    D.processEvent(T.event(I), I);
  // The abstract queue peak is at most (T-1) * 2 * #critical-sections.
  uint64_t Sections = 0;
  for (const Event &E : T.events())
    if (E.Kind == EventKind::Acquire)
      ++Sections;
  EXPECT_LE(D.stats().MaxAbstractQueueEntries,
            2 * Sections * (T.numThreads() - 1));
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, EquivalenceTest,
                         ::testing::Range<uint64_t>(1, 41));

// The fidelity knobs: on traces without fork/join, the literal
// Definition 3 (strict premise) yields a relation no larger than the
// Algorithm 1 semantics (inclusive premise).
TEST(ClosureOptionsTest, StrictPremiseIsContainedInInclusive) {
  for (uint64_t Seed : {3u, 11u, 27u}) {
    Trace T = randomTrace(paramsForSeed(Seed, false));
    ClosureOptions Strict;
    Strict.InclusivePremise = false;
    ClosureEngine Literal(T, Strict);
    ClosureEngine Algorithmic(T);
    for (EventIdx B = 0; B != T.size(); ++B) {
      for (EventIdx A = 0; A != B; ++A) {
        if (Literal.ordered(OrderKind::WCP, A, B)) {
          EXPECT_TRUE(Algorithmic.ordered(OrderKind::WCP, A, B));
        }
      }
    }
  }
}
