#!/usr/bin/env python3
"""Structural checks over a bench_pipeline JSON emission.

Two tiers, mirroring what the numbers can actually support:

  * Always (any host): the lock-free publish path's invariants — every
    streamed section's ``publish.events`` equals the events the run
    ingested, and the retired ``consume.lock_wait_seconds`` must be
    absent or exactly zero (a nonzero value means a mutex crept back
    between publication and the lanes). The ``syncp`` section must be
    present and self-consistent: the streamed run reproduced the batch
    report (``streamed_matches_batch`` true), every reported race came
    from a candidate the prefilter admitted (``races <=
    candidate_pairs``), and the closure actually ran when there were
    candidates to decide. The ``serve_resilience`` section must be
    present, its kill-injected run must reproduce the clean report
    (``reports_match`` true), and the fault plan must actually have
    fired (``reconnects >= 1`` when kills were injected).

  * Only on a trustworthy parallel run (``degraded`` false and
    ``hardware_threads >= 4``): the perf claims — fan-out ``speedup``
    above 1.0, positive ``overlap_saved_seconds`` for the streamed and
    streamed_windowed sections, a monotonically non-increasing
    ``wall_seconds`` across the 1->4 thread scaling sweep, and the
    serve_resilience resume overhead within 10% of the uninterrupted
    wall (with a 50 ms absolute allowance against timer jitter). A
    degraded run (workers oversubscribe the host) skips these instead
    of failing on scheduler noise.

Usage: check_bench.py BENCH.json
"""

import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        bench = json.load(f)

    rc = 0
    events = bench.get("events")
    stages = bench.get("stage_breakdown", {})
    if not stages:
        rc |= fail("no stage_breakdown section (obs layer stopped reporting)")
    for name, section in stages.items():
        published = section.get("publish.events")
        if published != events:
            rc |= fail(
                f"{name}: publish.events = {published} but the run ingested "
                f"{events} — the watermark diverged from ingestion"
            )
        lock_wait = section.get("consume.lock_wait_seconds", 0)
        if lock_wait != 0:
            rc |= fail(
                f"{name}: consume.lock_wait_seconds = {lock_wait}; the "
                "publish path must not take a lock"
            )

    syncp = bench.get("syncp")
    if not syncp:
        rc |= fail("no syncp section (sync-preserving lane stopped reporting)")
    else:
        if syncp.get("streamed_matches_batch") is not True:
            rc |= fail("syncp: streamed run did not reproduce the batch report")
        races = syncp.get("races", -1)
        candidates = syncp.get("candidate_pairs", -1)
        if races < 0 or candidates < 0:
            rc |= fail("syncp: races/candidate_pairs missing")
        elif races > candidates:
            rc |= fail(
                f"syncp: {races} race(s) from only {candidates} candidate "
                "pair(s) — a race must come from an admitted candidate"
            )
        if candidates > 0 and syncp.get("closure_iterations", 0) <= 0:
            rc |= fail(
                f"syncp: {candidates} candidate(s) but no closure "
                "iterations — the exact decision procedure never ran"
            )

    serve = bench.get("serve_resilience")
    if not serve:
        rc |= fail("no serve_resilience section (fault-tolerance lane "
                   "stopped reporting)")
    else:
        if serve.get("reports_match") is not True:
            rc |= fail("serve_resilience: the kill-injected run's report "
                       "diverged from the uninterrupted one")
        kills = serve.get("kills", 0)
        reconnects = serve.get("reconnects", -1)
        if kills > 0 and reconnects < 1:
            rc |= fail(
                f"serve_resilience: {kills} injected kill(s) but "
                f"{reconnects} reconnect(s) — the fault plan never fired"
            )

    degraded = bench.get("degraded", True)
    hw = bench.get("hardware_threads", 0)
    if degraded or hw < 4:
        print(
            f"check_bench: skipping speedup assertions "
            f"(degraded={degraded}, hardware_threads={hw})"
        )
    else:
        if bench.get("speedup", 0) <= 1.0:
            rc |= fail(f"speedup {bench.get('speedup')} <= 1.0 on a "
                       f"{hw}-thread host")
        for name in ("streamed", "streamed_windowed"):
            saved = bench.get(name, {}).get("overlap_saved_seconds")
            if saved is None or saved <= 0:
                rc |= fail(f"{name}: overlap_saved_seconds = {saved}, "
                           "expected > 0 on a multi-core host")
        sweep = {p["threads"]: p["wall_seconds"] for p in bench.get("scaling", [])}
        walls = [sweep.get(n) for n in (1, 2, 4)]
        if None in walls:
            rc |= fail("scaling sweep is missing the 1/2/4 thread points")
        elif not all(a >= b for a, b in zip(walls, walls[1:])):
            rc |= fail(f"scaling wall_seconds not monotonically "
                       f"non-increasing across 1->4 threads: {walls}")
        if serve:
            clean = serve.get("clean_wall_seconds", 0)
            faulty = serve.get("faulty_wall_seconds", 0)
            ratio = serve.get("resume_overhead_ratio", 0)
            # Resume must be noise against the analysis: 10% relative, with
            # a 50 ms absolute allowance so short clean walls don't turn
            # timer jitter into a failure.
            if clean > 0 and ratio > 1.10 and (faulty - clean) > 0.05:
                rc |= fail(
                    f"serve_resilience: resume overhead ratio {ratio:.3f} "
                    f"(clean {clean:.3f}s, faulty {faulty:.3f}s) exceeds "
                    "the 10% budget on a non-degraded host"
                )

    if rc == 0:
        print("check_bench: OK")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
