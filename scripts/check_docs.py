#!/usr/bin/env python3
"""Keep the docs honest: link check + CLI invocation check.

Part of rapidpp (PLDI'17 WCP reproduction).

Two failure modes docs rot into, both caught here and run as a CI job on
every push:

  1. intra-repo markdown links pointing at files that moved or were
     renamed — every relative link target in *.md (repo root and docs/)
     must resolve to an existing file;
  2. quoted `race_cli ...` invocations whose flags no longer parse —
     every invocation found in code blocks or inline code spans is
     re-executed with `--dry-run` appended (race_cli validates the flag
     combination and exits without reading a trace), so a renamed or
     removed flag fails the job the moment a doc still advertises it.

Usage: scripts/check_docs.py [--cli PATH_TO_RACE_CLI] [--root REPO_ROOT]

Without --cli the invocation check is skipped (link check still runs).
"""

import argparse
import pathlib
import re
import shlex
import subprocess
import sys

# [text](target) — excluding images is unnecessary; image targets must
# exist too. Ignores absolute URLs and pure anchors below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A race_cli command: the binary name — path prefixes like
# `./build/race_cli` count — followed by at least one whitespace-separated
# argument, up to the end of the line / code span. `race_cli_json_parses`
# (ctest names) must not match, hence the \s and the no-word/dash guard.
CMD_RE = re.compile(r"(?<![\w-])race_cli\s+([^`\n]*)")


def doc_files(root: pathlib.Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def user_doc_files(root: pathlib.Path):
    """The user-facing docs whose quoted invocations must stay runnable.
    (CHANGES.md and the PR-log files mention historical flags in prose —
    links there are still checked, commands are not.)"""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    yield from sorted((root / "docs").glob("*.md"))


def check_links(root: pathlib.Path) -> list:
    errors = []
    for md in doc_files(root):
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: broken link "
                        f"'{target}' (no such file {path})")
    return errors


def extract_commands(root: pathlib.Path):
    """Yields (file, lineno, argv) for every quoted race_cli invocation."""
    for md in user_doc_files(root):
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            # Outside fences only look inside inline code spans, so prose
            # that merely *names* the tool is not executed.
            regions = [line] if in_fence else re.findall(r"`([^`]*)`", line)
            for region in regions:
                for args in CMD_RE.findall(region):
                    args = args.strip().rstrip(".,;:")
                    if not args:
                        continue
                    try:
                        argv = shlex.split(args)
                    except ValueError as err:
                        yield md, lineno, None, f"unparsable: {err}"
                        continue
                    # Doc lines may show output after a pipe or comment.
                    for cut in ("|", "#", "&&", ">"):
                        if cut in argv:
                            argv = argv[: argv.index(cut)]
                    yield md, lineno, argv, None


def check_commands(root: pathlib.Path, cli: pathlib.Path) -> list:
    errors = []
    seen = 0
    for md, lineno, argv, err in extract_commands(root):
        where = f"{md.relative_to(root)}:{lineno}"
        if err:
            errors.append(f"{where}: {err}")
            continue
        seen += 1
        proc = subprocess.run(
            [str(cli), *argv, "--dry-run"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            errors.append(
                f"{where}: `race_cli {' '.join(argv)}` no longer parses "
                f"(exit {proc.returncode}): {proc.stderr.strip()}")
    if seen == 0:
        errors.append("no race_cli invocations found in docs — the "
                      "extraction regex or the docs rotted")
    else:
        print(f"checked {seen} race_cli invocation(s)")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cli", type=pathlib.Path,
                    help="race_cli binary; omit to skip invocation checks")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent)
    opts = ap.parse_args()
    if opts.cli:
        opts.cli = opts.cli.resolve()
        if not opts.cli.exists():
            print(f"error: no such race_cli binary: {opts.cli}",
                  file=sys.stderr)
            return 1

    errors = check_links(opts.root)
    print(f"checked links in {len(list(doc_files(opts.root)))} markdown "
          f"file(s)")
    if opts.cli:
        errors += check_commands(opts.root, opts.cli)
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
